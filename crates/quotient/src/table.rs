//! The slotted quotienting table shared by every quotient-filter
//! variant in the workspace (plain QF, CQF, maplets, adaptive QF).
//!
//! Layout (tutorial §2.1): `2^q` home slots, each holding a
//! `width`-bit payload, plus three metadata bitmaps:
//!
//! - `occupieds[i]` — some stored fingerprint has quotient `i`;
//! - `runends[i]`  — slot `i` holds the last payload of a run;
//! - `in_use[i]`   — slot `i` holds a payload (cluster structure).
//!
//! This is the original quotient filter's 3-bit metadata budget
//! \[Bender et al. 2012\]. Runs are stored in quotient order,
//! right-shifted past their home slot when necessary (Robin Hood
//! layout); a *cluster* is a maximal range of `in_use` slots and is
//! the unit of mutation: [`SlotTable::modify_run`] decodes the
//! affected cluster(s), applies an arbitrary run edit, and re-encodes
//! — O(cluster) and straightforwardly correct, at the cost of the
//! constant-factor speed tricks of the blocked RSQF (an explicitly
//! documented substitution; see DESIGN.md).
//!
//! The table is linear, not circular: `padding` extra physical slots
//! absorb right-shift past the last home slot.

use filter_core::{BitVec, FilterError, PackedArray, Result};

/// A decoded run: home quotient plus its payload slots in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Home quotient of this run.
    pub quotient: u64,
    /// Payload values stored in the run's slots.
    pub payloads: Vec<u64>,
}

/// Slotted quotienting table with Robin Hood layout.
#[derive(Debug, Clone)]
pub struct SlotTable {
    q: u32,
    width: u32,
    occupieds: BitVec,
    runends: BitVec,
    in_use: BitVec,
    slots: PackedArray,
    used_slots: usize,
    physical: usize,
    /// Rolling tick for 1-in-8 sampling of the cluster-length
    /// telemetry observation: the histogram's shape, not its absolute
    /// count, is the diagnostic, and sampling keeps the hot
    /// `modify_run` path at a fraction of a percent of overhead.
    /// Ephemeral statistics state — deliberately not serialized.
    stat_tick: u8,
}

impl SlotTable {
    /// Create a table with `2^q` home slots of `width`-bit payloads.
    pub fn new(q: u32, width: u32) -> Self {
        assert!((1..=56).contains(&q), "q out of range");
        assert!((1..=64).contains(&width), "width out of range");
        let home = 1usize << q;
        // Padding absorbs shifts past the last home slot; 64 + 5% is
        // far beyond the longest expected cluster at load ≤ 0.95.
        let physical = home + 64 + home / 20;
        SlotTable {
            q,
            width,
            occupieds: BitVec::new(home),
            runends: BitVec::new(physical),
            in_use: BitVec::new(physical),
            slots: PackedArray::new(physical, width),
            used_slots: 0,
            physical,
            stat_tick: 0,
        }
    }

    /// log2 of the number of home slots.
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Payload width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of home slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        1usize << self.q
    }

    /// Number of payload slots currently in use.
    #[inline]
    pub fn used_slots(&self) -> usize {
        self.used_slots
    }

    /// Load factor over home slots.
    #[inline]
    pub fn load(&self) -> f64 {
        self.used_slots as f64 / self.capacity() as f64
    }

    /// Heap bytes: payloads + the three metadata bitmaps.
    pub fn size_in_bytes(&self) -> usize {
        self.slots.size_in_bytes()
            + self.occupieds.size_in_bytes()
            + self.runends.size_in_bytes()
            + self.in_use.size_in_bytes()
    }

    /// Start of the cluster containing slot `i`: one past the last
    /// zero in `in_use` strictly before `i` (word-level scan, not
    /// bit-by-bit — see [`BitVec::prev_zero`]).
    fn cluster_start(&self, i: usize) -> usize {
        if i == 0 {
            return 0;
        }
        match self.in_use.prev_zero(i - 1) {
            Some(z) => z + 1,
            None => 0,
        }
    }

    /// Decode the cluster starting at `c` (which must be a cluster
    /// start). Returns the runs and the exclusive end of the cluster.
    fn decode_cluster(&self, c: usize) -> (Vec<Run>, usize) {
        let mut runs = Vec::new();
        let mut s = c;
        let mut quotients: Vec<u64> = Vec::new();
        let mut qi = 0usize; // next quotient index to close
        let mut run_start = c;
        while s < self.physical && self.in_use.get(s) {
            if s < self.capacity() && self.occupieds.get(s) {
                quotients.push(s as u64);
            }
            if self.runends.get(s) {
                debug_assert!(qi < quotients.len(), "runend without quotient");
                let payloads = (run_start..=s).map(|i| self.slots.get(i)).collect();
                runs.push(Run {
                    quotient: quotients[qi],
                    payloads,
                });
                qi += 1;
                run_start = s + 1;
            }
            s += 1;
        }
        debug_assert_eq!(qi, quotients.len(), "cluster left runs open");
        debug_assert_eq!(run_start, s, "cluster ended mid-run");
        (runs, s)
    }

    /// Slot range `[start, end]` of quotient `q`'s run, if occupied.
    ///
    /// This is the RSQF lookup recipe (tutorial §2.1) in its
    /// rank+select form, word-accelerated end to end: `rank` over
    /// `occupieds[c..=q]` is a popcount scan
    /// ([`BitVec::count_ones_range`]) and both "t-th runend after
    /// `c`" selects go through the probe engine's branchless in-word
    /// select ([`BitVec::nth_one_from`]) — no bit-by-bit loop
    /// remains on the query path.
    fn find_run(&self, quot: u64) -> Option<(usize, usize)> {
        let qs = quot as usize;
        if !self.occupieds.get(qs) {
            return None;
        }
        let c = self.cluster_start(qs);
        // t = number of occupied quotients in [c, qs] (1-based index
        // of qs's run within the cluster).
        let t = self.occupieds.count_ones_range(c, qs + 1);
        debug_assert!(t >= 1, "occupied quotient lost its rank");
        // The t-th runend at or after c closes qs's run; the (t-1)-th
        // closes the previous run, bounding this run's start.
        let end = self
            .runends
            .nth_one_from(c, t - 1)
            .expect("occupied quotient has no runend");
        let start = if t == 1 {
            c.max(qs)
        } else {
            let prev_end = self
                .runends
                .nth_one_from(c, t - 2)
                .expect("mid-cluster runend missing");
            (prev_end + 1).max(qs)
        };
        debug_assert!(self.in_use.get(end), "runend outside cluster");
        Some((start, end))
    }

    /// Prefetch the metadata and payload cache lines around quotient
    /// `quot`'s home slot (the batch kernel's hash phase warms the
    /// three metadata bitmaps plus the slot array before resolving).
    /// Hint only; cluster walks that leave the home word still miss.
    #[inline]
    pub fn prefetch_home(&self, quot: u64) {
        let i = quot as usize;
        self.occupieds.prefetch_bit(i);
        self.runends.prefetch_bit(i);
        self.in_use.prefetch_bit(i);
        self.slots.prefetch_field(i);
    }

    /// Read the payloads of quotient `q`'s run (empty if unoccupied).
    pub fn run_payloads(&self, quot: u64) -> Vec<u64> {
        match self.find_run(quot) {
            Some((s, e)) => (s..=e).map(|i| self.slots.get(i)).collect(),
            None => Vec::new(),
        }
    }

    /// Visit the payloads of quotient `q`'s run without allocating;
    /// stops early when `visit` returns `false`.
    pub fn scan_run(&self, quot: u64, mut visit: impl FnMut(u64) -> bool) {
        if let Some((s, e)) = self.find_run(quot) {
            for i in s..=e {
                if !visit(self.slots.get(i)) {
                    return;
                }
            }
        }
    }

    /// Apply an arbitrary edit to quotient `q`'s run.
    ///
    /// `edit` receives the current payloads (empty vec when the
    /// quotient is unoccupied) and mutates them; an empty result
    /// removes the run. The surrounding cluster(s) are re-encoded to
    /// restore Robin Hood layout.
    pub fn modify_run(&mut self, quot: u64, edit: impl FnOnce(&mut Vec<u64>)) -> Result<()> {
        debug_assert!((quot as usize) < self.capacity());
        let qs = quot as usize;

        // Fast path: empty home slot and unoccupied quotient → a new
        // singleton run can be placed directly.
        if !self.in_use.get(qs) && !self.occupieds.get(qs) {
            let mut payloads = Vec::new();
            edit(&mut payloads);
            if payloads.is_empty() {
                return Ok(());
            }
            if payloads.len() == 1 {
                self.slots.set(qs, payloads[0]);
                self.occupieds.set(qs);
                self.runends.set(qs);
                self.in_use.set(qs);
                self.used_slots += 1;
                return Ok(());
            }
            // Multi-slot new run falls through to the general path.
            return self.rewrite_with(qs, quot, payloads);
        }

        // General path: decode the cluster containing the affected
        // region. A new run for `quot` may need to displace a cluster
        // that begins before `quot`.
        let c = self.cluster_start(if self.in_use.get(qs) {
            qs
        } else {
            // Slot empty but quotient occupied elsewhere (run shifted
            // right is impossible — runs shift right, so q's run is at
            // ≥ q; q occupied implies in_use at some ≥ q... its
            // cluster contains qs only if in_use(qs). If slot qs is
            // empty and occupieds[qs] is set, the run lives in a
            // cluster starting after qs? Runs of quotient qs start at
            // ≥ qs and clusters are contiguous from their start; if
            // qs itself is empty no cluster covers it, so the run
            // would have nowhere legal to live. This state cannot
            // arise.
            debug_assert!(!self.occupieds.get(qs));
            qs
        });

        let mut runs;
        let mut span_end;
        if self.in_use.get(c) {
            let (r, e) = self.decode_cluster(c);
            self.stat_tick = self.stat_tick.wrapping_add(1);
            if self.stat_tick.is_multiple_of(8) {
                crate::CQF_CLUSTER_LEN.observe((e - c) as u64);
            }
            runs = r;
            span_end = e;
        } else {
            runs = Vec::new();
            span_end = c;
        }

        // Locate or create the target run.
        match runs.iter_mut().find(|r| r.quotient == quot) {
            Some(run) => {
                edit(&mut run.payloads);
            }
            None => {
                let mut payloads = Vec::new();
                edit(&mut payloads);
                if !payloads.is_empty() {
                    let pos = runs.partition_point(|r| r.quotient < quot);
                    runs.insert(
                        pos,
                        Run {
                            quotient: quot,
                            payloads,
                        },
                    );
                }
            }
        }
        runs.retain(|r| !r.payloads.is_empty());

        // Absorb following clusters while the re-encoded layout would
        // collide with them.
        loop {
            let required_end = Self::layout_end(c, &runs);
            if required_end > self.physical {
                return Err(FilterError::CapacityExceeded);
            }
            if required_end <= span_end {
                break;
            }
            // Find the next cluster start at or after span_end.
            match self.in_use.next_one(span_end) {
                Some(next_c) if next_c < required_end => {
                    let (more, e) = self.decode_cluster(next_c);
                    runs.extend(more);
                    span_end = e;
                }
                _ => break,
            }
        }

        self.write_span(c, span_end, &runs)
    }

    /// Exclusive end slot of the greedy layout of `runs` from `c`.
    fn layout_end(c: usize, runs: &[Run]) -> usize {
        let mut cursor = c;
        for r in runs {
            let start = cursor.max(r.quotient as usize);
            cursor = start + r.payloads.len();
        }
        cursor
    }

    /// Helper for the fast-path multi-slot new run.
    fn rewrite_with(&mut self, c: usize, quot: u64, payloads: Vec<u64>) -> Result<()> {
        let runs = vec![Run {
            quotient: quot,
            payloads,
        }];
        let end = Self::layout_end(c, &runs);
        if end > self.physical {
            return Err(FilterError::CapacityExceeded);
        }
        // The span may collide with a following cluster; route through
        // the general machinery by temporarily absorbing it.
        let mut runs = runs;
        let mut span_end = c;
        loop {
            let required_end = Self::layout_end(c, &runs);
            if required_end > self.physical {
                return Err(FilterError::CapacityExceeded);
            }
            if required_end <= span_end {
                break;
            }
            match self.in_use.next_one(span_end) {
                Some(next_c) if next_c < required_end => {
                    let (more, e) = self.decode_cluster(next_c);
                    runs.extend(more);
                    span_end = e;
                }
                _ => break,
            }
        }
        self.write_span(c, span_end, &runs)
    }

    /// Clear `[c, old_end)` and lay out `runs` greedily from `c`.
    fn write_span(&mut self, c: usize, old_end: usize, runs: &[Run]) -> Result<()> {
        // Account used slots: removed old span, will add new layout.
        let mut old_used = 0usize;
        for i in c..old_end {
            if self.in_use.get(i) {
                old_used += 1;
            }
            self.in_use.clear(i);
            self.runends.clear(i);
            if i < self.capacity() {
                self.occupieds.clear(i);
            }
        }
        let mut cursor = c;
        let mut new_used = 0usize;
        for r in runs {
            debug_assert!((r.quotient as usize) < self.capacity());
            let start = cursor.max(r.quotient as usize);
            let end = start + r.payloads.len() - 1;
            debug_assert!(end < self.physical);
            for (off, &p) in r.payloads.iter().enumerate() {
                self.slots.set(start + off, p);
                self.in_use.set(start + off);
            }
            self.runends.set(end);
            self.occupieds.set(r.quotient as usize);
            new_used += r.payloads.len();
            cursor = end + 1;
        }
        debug_assert!(cursor <= old_end.max(cursor));
        self.used_slots = self.used_slots - old_used + new_used;
        Ok(())
    }

    /// Iterate over every stored run in quotient order (decodes one
    /// cluster at a time).
    pub fn iter_runs(&self) -> RunIter<'_> {
        RunIter {
            table: self,
            next: 0,
            buffered: std::collections::VecDeque::new(),
        }
    }
}

/// Iterator over all runs of a [`SlotTable`].
pub struct RunIter<'a> {
    table: &'a SlotTable,
    next: usize,
    buffered: std::collections::VecDeque<Run>,
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        if let Some(r) = self.buffered.pop_front() {
            return Some(r);
        }
        let c = self.table.in_use.next_one(self.next)?;
        let (runs, end) = self.table.decode_cluster(c);
        self.next = end;
        self.buffered = runs.into();
        self.buffered.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_insert_and_query() {
        let mut t = SlotTable::new(8, 9);
        t.modify_run(10, |p| p.push(0x1ab)).unwrap();
        assert_eq!(t.run_payloads(10), vec![0x1ab]);
        assert_eq!(t.run_payloads(11), Vec::<u64>::new());
        assert_eq!(t.used_slots(), 1);
    }

    #[test]
    fn colliding_quotients_form_runs() {
        let mut t = SlotTable::new(8, 9);
        for v in [5u64, 3, 9] {
            t.modify_run(10, |p| {
                p.push(v);
                p.sort_unstable();
            })
            .unwrap();
        }
        assert_eq!(t.run_payloads(10), vec![3, 5, 9]);
        assert_eq!(t.used_slots(), 3);
    }

    #[test]
    fn adjacent_quotients_shift() {
        let mut t = SlotTable::new(8, 9);
        // Fill quotient 10 with 3 payloads → occupies slots 10..=12,
        // then quotient 11 and 12 must shift right.
        for v in [1u64, 2, 3] {
            t.modify_run(10, |p| p.push(v)).unwrap();
        }
        t.modify_run(11, |p| p.push(40)).unwrap();
        t.modify_run(12, |p| p.push(50)).unwrap();
        assert_eq!(t.run_payloads(10), vec![1, 2, 3]);
        assert_eq!(t.run_payloads(11), vec![40]);
        assert_eq!(t.run_payloads(12), vec![50]);
        assert_eq!(t.used_slots(), 5);
    }

    #[test]
    fn insert_before_existing_cluster_displaces_it() {
        let mut t = SlotTable::new(8, 9);
        t.modify_run(11, |p| p.push(40)).unwrap();
        t.modify_run(12, |p| p.push(50)).unwrap();
        // Growing quotient 10's run pushes 11 and 12 right.
        for v in [1u64, 2, 3] {
            t.modify_run(10, |p| p.push(v)).unwrap();
        }
        assert_eq!(t.run_payloads(10), vec![1, 2, 3]);
        assert_eq!(t.run_payloads(11), vec![40]);
        assert_eq!(t.run_payloads(12), vec![50]);
    }

    #[test]
    fn removal_restores_home_positions() {
        let mut t = SlotTable::new(8, 9);
        for v in [1u64, 2, 3] {
            t.modify_run(10, |p| p.push(v)).unwrap();
        }
        t.modify_run(11, |p| p.push(40)).unwrap();
        // Remove all of quotient 10; 11 should slide home.
        t.modify_run(10, |p| p.clear()).unwrap();
        assert_eq!(t.run_payloads(10), Vec::<u64>::new());
        assert_eq!(t.run_payloads(11), vec![40]);
        assert_eq!(t.used_slots(), 1);
        // Structural: slot 11 is now 11's home again.
        assert!(t.in_use.get(11));
        assert!(!t.in_use.get(12));
    }

    #[test]
    fn remove_one_payload_from_run() {
        let mut t = SlotTable::new(8, 9);
        for v in [1u64, 2, 3] {
            t.modify_run(10, |p| p.push(v)).unwrap();
        }
        t.modify_run(10, |p| {
            let i = p.iter().position(|&x| x == 2).unwrap();
            p.remove(i);
        })
        .unwrap();
        assert_eq!(t.run_payloads(10), vec![1, 3]);
        assert_eq!(t.used_slots(), 2);
    }

    #[test]
    fn dense_region_round_trips() {
        // Saturate a region with multi-payload runs to force long
        // clusters and absorption of neighbouring clusters.
        let mut t = SlotTable::new(6, 8); // 64 home slots
        let mut truth: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        let quots = [3u64, 3, 4, 4, 4, 5, 7, 8, 8, 2, 6, 6, 9, 3, 5];
        for (i, &q) in quots.iter().enumerate() {
            let v = (i as u64) + 100;
            t.modify_run(q, |p| p.push(v)).unwrap();
            truth.entry(q).or_default().push(v);
        }
        for (&q, vs) in &truth {
            assert_eq!(&t.run_payloads(q), vs, "quotient {q}");
        }
        // Remove everything in a scrambled order.
        let mut all: Vec<(u64, u64)> = truth
            .iter()
            .flat_map(|(&q, vs)| vs.iter().map(move |&v| (q, v)))
            .collect();
        all.reverse();
        for (q, v) in all {
            t.modify_run(q, |p| {
                let i = p.iter().position(|&x| x == v).unwrap();
                p.remove(i);
            })
            .unwrap();
        }
        assert_eq!(t.used_slots(), 0);
        for q in 0..64u64 {
            assert!(t.run_payloads(q).is_empty());
        }
    }

    #[test]
    fn iter_runs_sees_everything() {
        let mut t = SlotTable::new(7, 10);
        let quots = [1u64, 1, 50, 50, 50, 51, 100, 127];
        for (i, &q) in quots.iter().enumerate() {
            t.modify_run(q, |p| p.push(i as u64)).unwrap();
        }
        let runs: Vec<Run> = t.iter_runs().collect();
        let total: usize = runs.iter().map(|r| r.payloads.len()).sum();
        assert_eq!(total, quots.len());
        let qs: Vec<u64> = runs.iter().map(|r| r.quotient).collect();
        assert_eq!(qs, vec![1, 50, 51, 100, 127]);
    }

    #[test]
    fn capacity_error_when_overfull() {
        let mut t = SlotTable::new(3, 4); // 8 home slots (+padding)
        let mut failed = false;
        for i in 0..2000u64 {
            if t.modify_run(i % 8, |p| p.push(i & 15)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "table never reported capacity exhaustion");
    }

    #[test]
    fn last_home_slot_shifts_into_padding() {
        let mut t = SlotTable::new(4, 8); // 16 home slots
        for v in 0..5u64 {
            t.modify_run(15, |p| p.push(v)).unwrap();
        }
        assert_eq!(t.run_payloads(15), vec![0, 1, 2, 3, 4]);
    }

    mod model_based {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary edit applied to one run.
        #[derive(Debug, Clone)]
        enum Op {
            Push(u64, u64),
            PopFront(u64),
            Clear(u64),
            Grow(u64, u8),
        }

        fn op_strategy(quotients: u64) -> impl Strategy<Value = Op> {
            prop_oneof![
                (0..quotients, any::<u64>()).prop_map(|(q, v)| Op::Push(q, v & 0xff)),
                (0..quotients).prop_map(Op::PopFront),
                (0..quotients).prop_map(Op::Clear),
                (0..quotients, 1u8..5).prop_map(|(q, n)| Op::Grow(q, n)),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The table agrees with a BTreeMap model under arbitrary
            /// interleavings of run edits — growth, shrinkage,
            /// clearing, and multi-slot extension — at every
            /// intermediate step.
            #[test]
            fn table_matches_model(
                ops in prop::collection::vec(op_strategy(32), 1..120),
            ) {
                let mut t = SlotTable::new(5, 8); // 32 home slots
                let mut model: std::collections::BTreeMap<u64, Vec<u64>> =
                    Default::default();
                for op in ops {
                    let result = match op {
                        Op::Push(q, v) => {
                            let r = t.modify_run(q, |p| p.push(v));
                            if r.is_ok() {
                                model.entry(q).or_default().push(v);
                            }
                            r
                        }
                        Op::PopFront(q) => {
                            let r = t.modify_run(q, |p| {
                                if !p.is_empty() {
                                    p.remove(0);
                                }
                            });
                            if r.is_ok() {
                                if let Some(m) = model.get_mut(&q) {
                                    if !m.is_empty() {
                                        m.remove(0);
                                    }
                                }
                            }
                            r
                        }
                        Op::Clear(q) => {
                            let r = t.modify_run(q, |p| p.clear());
                            if r.is_ok() {
                                model.remove(&q);
                            }
                            r
                        }
                        Op::Grow(q, n) => {
                            let r = t.modify_run(q, |p| {
                                for i in 0..n {
                                    p.push(i as u64);
                                }
                            });
                            if r.is_ok() {
                                let e = model.entry(q).or_default();
                                for i in 0..n {
                                    e.push(i as u64);
                                }
                            }
                            r
                        }
                    };
                    // Capacity errors are legal; the table must simply
                    // stay consistent with the model (which skipped
                    // the failed edit). NOTE: modify_run is atomic —
                    // a failed edit leaves the table unchanged only
                    // if it reports failure before writing, which the
                    // implementation guarantees by checking layout
                    // bounds first.
                    let _ = result;
                    for q in 0..32u64 {
                        let want = model.get(&q).cloned().unwrap_or_default();
                        prop_assert_eq!(
                            t.run_payloads(q),
                            want,
                            "divergence at quotient {}",
                            q
                        );
                    }
                    let model_slots: usize = model.values().map(|v| v.len()).sum();
                    prop_assert_eq!(t.used_slots(), model_slots);
                }
            }
        }
    }
}
