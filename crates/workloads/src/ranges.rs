//! Range-query workloads with controllable key–query correlation.
//!
//! The tutorial (§2.5) stresses that range filters differ most under
//! *correlated* workloads, where queried intervals fall deliberately
//! close to (but not on) existing keys — the adversarial case that
//! breaks SuRF and that Grafite is robust to. This module generates
//! both uncorrelated and correlated range workloads over a shared key
//! set.

use rand::Rng;

/// A closed interval query `[lo, hi]` with its ground-truth answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Whether the key set actually intersects `[lo, hi]`.
    pub truly_nonempty: bool,
}

/// Generator of keys plus empty-range queries at a chosen correlation
/// level.
#[derive(Debug, Clone)]
pub struct CorrelatedRangeWorkload {
    /// Sorted distinct keys.
    pub keys: Vec<u64>,
    universe: u64,
}

impl CorrelatedRangeWorkload {
    /// Draw `n` distinct keys uniformly from `[0, universe)`.
    pub fn uniform(seed: u64, n: usize, universe: u64) -> Self {
        assert!(universe as u128 >= 4 * n as u128, "universe too dense");
        let mut rng = crate::rng(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(rng.gen_range(0..universe));
        }
        CorrelatedRangeWorkload {
            keys: set.into_iter().collect(),
            universe,
        }
    }

    /// Wrap an existing sorted, distinct key set.
    pub fn from_sorted_keys(keys: Vec<u64>, universe: u64) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(keys.last().is_none_or(|&k| k < universe));
        CorrelatedRangeWorkload { keys, universe }
    }

    /// The key universe bound.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// True iff `[lo, hi]` intersects the key set.
    pub fn truth(&self, lo: u64, hi: u64) -> bool {
        let i = self.keys.partition_point(|&k| k < lo);
        i < self.keys.len() && self.keys[i] <= hi
    }

    /// Generate `count` *empty* range queries of width `width`.
    ///
    /// `correlation` ∈ [0, 1]: 0 places ranges uniformly at random
    /// (rejecting non-empty ones); 1 places each range starting
    /// immediately after an existing key (the adversarial case). A
    /// fractional value mixes the two per-query.
    pub fn empty_queries(
        &self,
        seed: u64,
        count: usize,
        width: u64,
        correlation: f64,
    ) -> Vec<RangeQuery> {
        assert!((0.0..=1.0).contains(&correlation));
        assert!(width >= 1);
        let mut rng = crate::rng(seed);
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while out.len() < count {
            attempts += 1;
            assert!(
                attempts < count * 1000 + 10_000,
                "could not place empty ranges; key set too dense"
            );
            let correlated = rng.gen::<f64>() < correlation;
            let lo = if correlated {
                // Start just past a random existing key.
                let k = self.keys[rng.gen_range(0..self.keys.len())];
                k.saturating_add(1)
            } else {
                rng.gen_range(0..self.universe.saturating_sub(width))
            };
            let hi = match lo.checked_add(width - 1) {
                Some(h) if h < self.universe => h,
                _ => continue,
            };
            if !self.truth(lo, hi) {
                out.push(RangeQuery {
                    lo,
                    hi,
                    truly_nonempty: false,
                });
            }
        }
        out
    }

    /// Generate `count` queries guaranteed non-empty (for correctness
    /// checks: a range filter must never return false for these).
    pub fn nonempty_queries(&self, seed: u64, count: usize, width: u64) -> Vec<RangeQuery> {
        let mut rng = crate::rng(seed);
        (0..count)
            .map(|_| {
                let k = self.keys[rng.gen_range(0..self.keys.len())];
                let slack = rng.gen_range(0..width);
                let lo = k.saturating_sub(slack);
                let hi = lo.saturating_add(width - 1).max(k);
                debug_assert!(self.truth(lo, hi));
                RangeQuery {
                    lo,
                    hi,
                    truly_nonempty: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_is_correct() {
        let w = CorrelatedRangeWorkload {
            keys: vec![10, 20, 30],
            universe: 100,
        };
        assert!(w.truth(10, 10));
        assert!(w.truth(5, 15));
        assert!(!w.truth(11, 19));
        assert!(w.truth(0, 100));
        assert!(!w.truth(31, 99));
    }

    #[test]
    fn empty_queries_are_empty() {
        let w = CorrelatedRangeWorkload::uniform(1, 1000, 1 << 40);
        for corr in [0.0, 0.5, 1.0] {
            let qs = w.empty_queries(2, 500, 16, corr);
            assert_eq!(qs.len(), 500);
            for q in &qs {
                assert!(!w.truth(q.lo, q.hi), "query [{}, {}] not empty", q.lo, q.hi);
                assert_eq!(q.hi - q.lo + 1, 16);
            }
        }
    }

    #[test]
    fn correlated_queries_hug_keys() {
        let w = CorrelatedRangeWorkload::uniform(3, 1000, 1 << 40);
        let qs = w.empty_queries(4, 200, 8, 1.0);
        // Every correlated query starts exactly one past a key.
        let keyset: std::collections::HashSet<u64> = w.keys.iter().copied().collect();
        let hugging = qs.iter().filter(|q| keyset.contains(&(q.lo - 1))).count();
        assert!(hugging > 190, "only {hugging}/200 queries hug a key");
    }

    #[test]
    fn nonempty_queries_hit() {
        let w = CorrelatedRangeWorkload::uniform(5, 500, 1 << 32);
        for q in w.nonempty_queries(6, 300, 64) {
            assert!(w.truth(q.lo, q.hi));
            assert!(q.truly_nonempty);
        }
    }

    #[test]
    fn deterministic() {
        let a = CorrelatedRangeWorkload::uniform(7, 100, 1 << 30);
        let b = CorrelatedRangeWorkload::uniform(7, 100, 1 << 30);
        assert_eq!(a.keys, b.keys);
        assert_eq!(
            a.empty_queries(8, 50, 4, 0.5),
            b.empty_queries(8, 50, 4, 0.5)
        );
    }
}
