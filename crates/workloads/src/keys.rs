//! Uniform key-set generation and negative-probe construction.

use rand::Rng;
use std::collections::HashSet;

/// Generate `n` distinct uniformly random `u64` keys.
pub fn unique_keys(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = crate::rng(seed);
    let mut seen = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let k: u64 = rng.gen();
        if seen.insert(k) {
            out.push(k);
        }
    }
    out
}

/// Generate `n` distinct keys guaranteed disjoint from `existing`
/// (negative probes for FPR measurement).
pub fn disjoint_keys(seed: u64, n: usize, existing: &[u64]) -> Vec<u64> {
    let present: HashSet<u64> = existing.iter().copied().collect();
    let mut rng = crate::rng(seed);
    let mut seen = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let k: u64 = rng.gen();
        if !present.contains(&k) && seen.insert(k) {
            out.push(k);
        }
    }
    out
}

/// An unbounded deterministic stream of uniform keys (not necessarily
/// distinct), useful for insert-heavy load tests.
pub struct KeyStream {
    rng: rand::rngs::StdRng,
}

impl KeyStream {
    /// New stream with the given seed.
    pub fn new(seed: u64) -> Self {
        KeyStream {
            rng: crate::rng(seed),
        }
    }
}

impl Iterator for KeyStream {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_keys_are_unique_and_deterministic() {
        let a = unique_keys(42, 10_000);
        let b = unique_keys(42, 10_000);
        assert_eq!(a, b);
        let set: HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10_000);
        let c = unique_keys(43, 100);
        assert_ne!(a[..100], c[..]);
    }

    #[test]
    fn disjoint_keys_do_not_intersect() {
        let pos = unique_keys(1, 5_000);
        let neg = disjoint_keys(2, 5_000, &pos);
        let pset: HashSet<_> = pos.iter().collect();
        assert!(neg.iter().all(|k| !pset.contains(k)));
        assert_eq!(neg.iter().collect::<HashSet<_>>().len(), 5_000);
    }

    #[test]
    fn key_stream_is_deterministic() {
        let a: Vec<u64> = KeyStream::new(7).take(100).collect();
        let b: Vec<u64> = KeyStream::new(7).take(100).collect();
        assert_eq!(a, b);
    }
}
