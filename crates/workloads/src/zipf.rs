//! Zipfian distribution sampling.
//!
//! The tutorial repeatedly emphasises skewed inputs: DNA k-mer
//! multiplicities, hot query keys, and frequently probed negatives all
//! follow heavy-tailed distributions (§2.6, §2.8). This sampler uses
//! the rejection-inversion method of Hörmann & Derflinger, which is
//! O(1) per draw for any exponent `s > 0`, including `s = 1`.

use rand::Rng;

/// A Zipf(n, s) sampler over ranks `1..=n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
}

impl Zipf {
    /// Create a sampler over `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs n > 0");
        assert!(s > 0.0, "Zipf needs s > 0");
        let h = |x: f64| -> f64 {
            // H(x) = integral of x^-s
            if (s - 1.0).abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        Zipf { n, s, h_x1, h_n }
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw one rank in `1..=n` (rank 1 is the most frequent).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        // Rejection-inversion (Hörmann & Derflinger 1996): invert the
        // integral H of the density, then accept/reject against the
        // true pmf. Expected iterations < 1.1 for all s.
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept iff u lands in the sub-interval of mass k^-s:
            // since x^-s is convex, H(k+.5) - H(k-.5) >= k^-s, so the
            // accepted region has exactly the Zipf pmf up to the
            // normalizer.
            if u >= self.h(k + 0.5) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }

    /// Draw `count` ranks.
    pub fn sample_many<R: Rng>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Number of distinct ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Exact probability of rank `k` (O(n); for tests and small n).
    pub fn pmf(&self, k: u64) -> f64 {
        let hn: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / hn
    }
}

/// Map Zipf ranks onto arbitrary key values so that rank popularity is
/// decoupled from key magnitude: rank `r` → `mix64(r ^ salt)`.
pub fn rank_to_key(rank: u64, salt: u64) -> u64 {
    filter_core::hash::mix64(rank ^ salt)
}

/// Draw `count` keys from a Zipf(`n`, `s`) popularity distribution,
/// mapped through [`rank_to_key`] with `salt` so hot keys are spread
/// uniformly over the key space. This is the standard skewed query
/// stream the closed-loop service load generator replays.
pub fn zipf_keys(seed: u64, n: u64, s: f64, salt: u64, count: usize) -> Vec<u64> {
    let z = Zipf::new(n, s);
    let mut rng = crate::rng(seed);
    (0..count)
        .map(|_| rank_to_key(z.sample(&mut rng), salt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = crate::rng(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(10_000, 1.2);
        let mut rng = crate::rng(2);
        let draws = z.sample_many(&mut rng, 50_000);
        let ones = draws.iter().filter(|&&k| k == 1).count() as f64 / 50_000.0;
        let p1 = z.pmf(1);
        assert!((ones - p1).abs() < 0.02, "empirical {ones} vs pmf {p1}");
        // Monotone decreasing frequency for the head.
        let count = |r: u64| draws.iter().filter(|&&k| k == r).count();
        assert!(count(1) > count(10));
        assert!(count(1) > count(100));
    }

    #[test]
    fn exponent_one_works() {
        let z = Zipf::new(100, 1.0);
        let mut rng = crate::rng(3);
        let draws = z.sample_many(&mut rng, 20_000);
        let ones = draws.iter().filter(|&&k| k == 1).count() as f64 / 20_000.0;
        assert!((ones - z.pmf(1)).abs() < 0.02);
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(500, 1.5);
        let a = z.sample_many(&mut crate::rng(9), 100);
        let b = z.sample_many(&mut crate::rng(9), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_keys_is_deterministic_and_skewed() {
        let a = zipf_keys(7, 1_000, 1.1, 3, 20_000);
        let b = zipf_keys(7, 1_000, 1.1, 3, 20_000);
        assert_eq!(a, b);
        let hot = rank_to_key(1, 3);
        let hits = a.iter().filter(|&&k| k == hot).count();
        assert!(hits > 1_000, "rank-1 key drawn only {hits} times");
    }

    #[test]
    fn rank_to_key_is_injective_on_sample() {
        let keys: std::collections::HashSet<u64> =
            (1..=10_000).map(|r| rank_to_key(r, 42)).collect();
        assert_eq!(keys.len(), 10_000);
    }
}
