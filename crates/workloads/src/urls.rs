//! Synthetic URL corpora for the malicious-URL yes/no-list case study
//! (§3.3).
//!
//! Substitutes for commercial blocklists (e.g. the Kaspersky statistics
//! the tutorial cites): generates plausible URL strings partitioned
//! into a malicious *yes list*, a benign *no list* of
//! important-never-block URLs, and background benign traffic, plus a
//! skewed query stream over them.

use crate::zipf::Zipf;
use rand::Rng;

const TLDS: [&str; 6] = ["com", "net", "org", "io", "ru", "xyz"];

/// Generate one random URL.
fn url<R: Rng>(rng: &mut R) -> String {
    let dom_len = rng.gen_range(5..15);
    let path_len = rng.gen_range(0..20);
    let mut s = String::with_capacity(8 + dom_len + path_len + 8);
    s.push_str("http://");
    for _ in 0..dom_len {
        s.push((b'a' + rng.gen_range(0..26)) as char);
    }
    s.push('.');
    s.push_str(TLDS[rng.gen_range(0..TLDS.len())]);
    if path_len > 0 {
        s.push('/');
        for _ in 0..path_len {
            let c = rng.gen_range(0..36);
            s.push(if c < 26 {
                (b'a' + c) as char
            } else {
                (b'0' + c - 26) as char
            });
        }
    }
    s
}

/// A synthetic URL-filtering scenario.
#[derive(Debug, Clone)]
pub struct UrlWorkload {
    /// Malicious URLs (the filter's yes list).
    pub malicious: Vec<String>,
    /// Benign URLs that are queried frequently and must never be
    /// blocked (candidate no list).
    pub hot_benign: Vec<String>,
    /// Background benign URLs queried rarely.
    pub cold_benign: Vec<String>,
}

impl UrlWorkload {
    /// Generate disjoint malicious / hot-benign / cold-benign URL sets.
    pub fn generate(seed: u64, malicious: usize, hot_benign: usize, cold_benign: usize) -> Self {
        let mut rng = crate::rng(seed);
        let total = malicious + hot_benign + cold_benign;
        let mut seen = std::collections::HashSet::with_capacity(total * 2);
        let mut all = Vec::with_capacity(total);
        while all.len() < total {
            let u = url(&mut rng);
            if seen.insert(u.clone()) {
                all.push(u);
            }
        }
        let cold = all.split_off(malicious + hot_benign);
        let hot = all.split_off(malicious);
        UrlWorkload {
            malicious: all,
            hot_benign: hot,
            cold_benign: cold,
        }
    }

    /// A query stream of `count` URLs: hot-benign URLs are drawn with
    /// Zipfian popularity and make up `hot_frac` of the stream; the
    /// remainder is split evenly between malicious and cold-benign
    /// draws. Returns `(url, is_malicious)` pairs.
    pub fn query_stream(&self, seed: u64, count: usize, hot_frac: f64) -> Vec<(String, bool)> {
        assert!((0.0..=1.0).contains(&hot_frac));
        let mut rng = crate::rng(seed);
        let hot_zipf = Zipf::new(self.hot_benign.len() as u64, 1.1);
        (0..count)
            .map(|_| {
                let r = rng.gen::<f64>();
                if r < hot_frac {
                    let rank = hot_zipf.sample(&mut rng) as usize - 1;
                    (self.hot_benign[rank].clone(), false)
                } else if r < hot_frac + (1.0 - hot_frac) / 2.0 {
                    let i = rng.gen_range(0..self.malicious.len());
                    (self.malicious[i].clone(), true)
                } else {
                    let i = rng.gen_range(0..self.cold_benign.len());
                    (self.cold_benign[i].clone(), false)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_are_disjoint_and_sized() {
        let w = UrlWorkload::generate(1, 1000, 100, 2000);
        assert_eq!(w.malicious.len(), 1000);
        assert_eq!(w.hot_benign.len(), 100);
        assert_eq!(w.cold_benign.len(), 2000);
        let mut all: Vec<&String> = w
            .malicious
            .iter()
            .chain(&w.hot_benign)
            .chain(&w.cold_benign)
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 3100);
    }

    #[test]
    fn urls_look_like_urls() {
        let w = UrlWorkload::generate(2, 10, 10, 10);
        for u in &w.malicious {
            assert!(u.starts_with("http://"));
            assert!(u.contains('.'));
        }
    }

    #[test]
    fn stream_labels_are_correct() {
        let w = UrlWorkload::generate(3, 500, 50, 500);
        let mal: std::collections::HashSet<_> = w.malicious.iter().collect();
        let stream = w.query_stream(4, 2000, 0.5);
        for (u, is_mal) in &stream {
            assert_eq!(mal.contains(u), *is_mal);
        }
        // Roughly half the stream should be hot-benign repeats.
        let hot: std::collections::HashSet<_> = w.hot_benign.iter().collect();
        let hot_hits = stream.iter().filter(|(u, _)| hot.contains(u)).count();
        assert!((800..1200).contains(&hot_hits), "hot hits {hot_hits}");
    }

    #[test]
    fn hot_stream_is_skewed() {
        let w = UrlWorkload::generate(5, 10, 100, 10);
        let stream = w.query_stream(6, 5000, 1.0);
        let mut counts = std::collections::HashMap::new();
        for (u, _) in &stream {
            *counts.entry(u.clone()).or_insert(0usize) += 1;
        }
        let max = counts.values().max().unwrap();
        let avg = 5000 / counts.len();
        assert!(*max > 3 * avg, "head not hot: max {max}, avg {avg}");
    }
}
