//! Synthetic DNA sequences and k-mer extraction (§3.2 substrate).
//!
//! Substitutes for SRA sequencing data: generates random genomes,
//! derives overlapping reads with configurable error, and packs k-mers
//! (k ≤ 32) into 2-bit-per-base `u64` codes with canonical
//! (reverse-complement-minimal) form — the representation Squeakr,
//! Mantis, and deBGR all use.

use rand::Rng;

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generate a random DNA sequence of `len` bases.
pub fn random_sequence(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = crate::rng(seed);
    (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect()
}

/// Derive `count` reads of `read_len` bases from `genome`, each with
/// independent per-base substitution-error probability `err`.
pub fn reads_from(
    genome: &[u8],
    seed: u64,
    count: usize,
    read_len: usize,
    err: f64,
) -> Vec<Vec<u8>> {
    assert!(genome.len() >= read_len);
    let mut rng = crate::rng(seed);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(0..=genome.len() - read_len);
            let mut read = genome[start..start + read_len].to_vec();
            for b in read.iter_mut() {
                if rng.gen::<f64>() < err {
                    *b = BASES[rng.gen_range(0..4)];
                }
            }
            read
        })
        .collect()
}

/// 2-bit encoding of one base; `None` for non-ACGT.
#[inline]
pub fn encode_base(b: u8) -> Option<u64> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Complement of a 2-bit base code (A↔T, C↔G).
#[inline]
pub fn complement(code: u64) -> u64 {
    3 - code
}

/// Reverse complement of a packed k-mer.
pub fn reverse_complement(kmer: u64, k: usize) -> u64 {
    let mut out = 0u64;
    let mut x = kmer;
    for _ in 0..k {
        out = (out << 2) | complement(x & 3);
        x >>= 2;
    }
    out
}

/// Canonical form: the lexicographically smaller of a k-mer and its
/// reverse complement, so both strands map to one representative.
pub fn canonical(kmer: u64, k: usize) -> u64 {
    kmer.min(reverse_complement(kmer, k))
}

/// Extract all canonical k-mers (k ≤ 32) from a sequence, skipping
/// windows containing non-ACGT characters.
pub fn kmers(seq: &[u8], k: usize) -> Vec<u64> {
    assert!((1..=32).contains(&k), "k must be in 1..=32");
    let mask = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    let mut out = Vec::new();
    let mut acc = 0u64;
    let mut valid = 0usize;
    for &b in seq {
        match encode_base(b) {
            Some(c) => {
                acc = ((acc << 2) | c) & mask;
                valid += 1;
                if valid >= k {
                    out.push(canonical(acc, k));
                }
            }
            None => {
                valid = 0;
                acc = 0;
            }
        }
    }
    out
}

/// Successor k-mers of `kmer` in a de Bruijn graph: shift in each of
/// the four bases (non-canonical orientation).
pub fn successors(kmer: u64, k: usize) -> [u64; 4] {
    let mask = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    [0, 1, 2, 3].map(|c| ((kmer << 2) | c) & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_dna_and_deterministic() {
        let s = random_sequence(1, 1000);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|b| BASES.contains(b)));
        assert_eq!(s, random_sequence(1, 1000));
    }

    #[test]
    fn kmer_count_is_len_minus_k_plus_1() {
        let s = random_sequence(2, 500);
        assert_eq!(kmers(&s, 21).len(), 500 - 21 + 1);
        assert_eq!(kmers(&s, 1).len(), 500);
    }

    #[test]
    fn invalid_bases_break_windows() {
        let seq = b"ACGTNACGT";
        // Windows of length 4: ACGT (pre-N) and ACGT (post-N) only.
        assert_eq!(kmers(seq, 4).len(), 2);
    }

    #[test]
    fn reverse_complement_is_involution() {
        for k in [3usize, 15, 21, 31, 32] {
            let seq = random_sequence(k as u64, 100);
            for km in kmers(&seq, k) {
                assert_eq!(reverse_complement(reverse_complement(km, k), k), km);
            }
        }
    }

    #[test]
    fn canonical_is_strand_invariant() {
        // ACGT's reverse complement is ACGT itself (palindrome).
        let acgt = 0b00_01_10_11u64;
        assert_eq!(reverse_complement(acgt, 4), acgt);
        // AAAA ↔ TTTT
        let aaaa = 0u64;
        let tttt = 0b11_11_11_11u64;
        assert_eq!(reverse_complement(aaaa, 4), tttt);
        assert_eq!(canonical(aaaa, 4), canonical(tttt, 4));
    }

    #[test]
    fn kmers_match_manual_encoding() {
        // "ACG" → A=0, C=1, G=2 → 0b000110 = 6; revcomp(ACG)=CGT =
        // 0b011011 = 27; canonical = 6.
        assert_eq!(kmers(b"ACG", 3), vec![6]);
    }

    #[test]
    fn reads_cover_genome() {
        let g = random_sequence(3, 2000);
        let rs = reads_from(&g, 4, 50, 100, 0.0);
        assert_eq!(rs.len(), 50);
        for r in &rs {
            assert_eq!(r.len(), 100);
            // Error-free reads must be substrings of the genome.
            assert!(g.windows(100).any(|w| w == &r[..]));
        }
    }

    #[test]
    fn successors_shift_left() {
        let km = kmers(b"ACGT", 4)[0];
        // canonical(ACGT) == ACGT itself (palindrome)
        let succ = successors(km, 4);
        assert_eq!(succ[0] & 3, 0);
        assert_eq!(succ[3] & 3, 3);
        // All successors share the (k-1)-suffix of km as prefix.
        for s in succ {
            assert_eq!(s >> 2, km & ((1 << 6) - 1));
        }
    }
}
