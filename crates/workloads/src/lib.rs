//! # workloads
//!
//! Deterministic workload generators for the `beyond-bloom` experiment
//! harness. These substitute for the production data the tutorial's
//! applications consume (RocksDB traces, SRA genomic reads, URL
//! blocklists) while exercising the same code paths:
//!
//! - [`keys`] — uniform random key sets, disjoint negative probes.
//! - [`zipf`] — Zipfian multiset draws (skewed counting, §2.6; hot
//!   negative queries, §2.8).
//! - [`ranges`] — range-query workloads with controllable
//!   key–query correlation (§2.5).
//! - [`dna`] — random DNA sequences and k-mer extraction (§3.2).
//! - [`urls`] — synthetic URL corpora for the yes/no-list case
//!   study (§3.3).
//!
//! Every generator is seeded and reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dna;
pub mod keys;
pub mod ranges;
pub mod urls;
pub mod zipf;

pub use keys::{disjoint_keys, unique_keys, KeyStream};
pub use ranges::{CorrelatedRangeWorkload, RangeQuery};
pub use zipf::{rank_to_key, zipf_keys, Zipf};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct the workspace-standard deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
