//! The filter server: a thread-pooled `std::net` TCP server hosting
//! named filter instances behind the wire protocol of [`crate::proto`].
//!
//! # Threading model
//!
//! One *accept* thread pulls connections off the listener and feeds a
//! bounded queue (`mpsc::sync_channel`); a fixed pool of *worker*
//! threads pulls from that queue and serves one connection at a time,
//! request-per-frame (thread-per-connection semantics over a bounded
//! pool — the classic shape for a filter sidecar where connections are
//! few and long-lived). There is no async runtime: the container
//! builds offline and the paper's measurements concern filter
//! throughput, not connection scaling.
//!
//! Workers read with a short socket timeout. [`crate::proto::FrameReader`]
//! retains partial progress across timeouts, so the timeout is purely
//! a tick on which the worker polls the shutdown flag — it never
//! corrupts the stream position of a slow writer.
//!
//! # Shutdown
//!
//! [`FilterServer::shutdown`] sets a flag, nudges the accept thread
//! awake with a self-connection, and joins everything. Workers finish
//! the request they are executing (its response is written) and then
//! close; queued-but-unserved connections are dropped. That is the
//! "drain in-flight, refuse new" contract.
//!
//! # Registry
//!
//! Filters live in a `RwLock<BTreeMap<name, Arc<ServedFilter>>>`.
//! Request handling clones the `Arc` and releases the registry lock
//! before touching the filter — concurrency across requests to one
//! filter is then governed by the filter's own synchronisation
//! (wait-free atomics for the Bloom backend, per-shard mutexes for
//! the sharded backends), exactly as measured in E14/E15.

use crate::metrics::{FilterRow, ServerMetrics, StatsReport};
use crate::proto::{
    write_frame, Backend, ErrorCode, FrameError, FrameEvent, FrameReader, HeaderError, Request,
    Response, DEFAULT_MAX_FRAME,
};
use bloom::{AtomicBlockedBloomFilter, RegisterBlockedBloomFilter};
use compacting::{CompactingConfig, CompactingFilter};
use concurrent::{Sharded, MAX_SHARD_BITS};
use cuckoo::CuckooFilter;
use filter_core::{BatchedFilter, Filter, FilterError};
use quotient::CountingQuotientFilter;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::expo::{FamilyKind, TextRenderer};
use telemetry::{EventKind, EventRing, StaticCounter, StaticGauge};

/// Requests fully served (response written), across every server in
/// the process.
pub static SERVICE_REQUESTS: StaticCounter = StaticCounter::new(
    "bb_service_requests_total",
    "Requests fully served across all filter servers in the process.",
);

/// Requests whose service time exceeded the configured slow-request
/// threshold (each also lands in the per-server slow-request log).
pub static SERVICE_SLOW_REQUESTS: StaticCounter = StaticCounter::new(
    "bb_service_slow_requests_total",
    "Requests slower than the configured slow-request threshold.",
);

/// Filters currently registered across every server in the process
/// (wire CREATEs plus direct `register` calls).
pub static FILTERS_REGISTERED: StaticGauge = StaticGauge::new(
    "bb_service_filters_registered",
    "Filters currently registered across all filter servers.",
);

/// Eagerly register this crate's metric families so they render in
/// the exposition even before any traffic touches them.
pub fn register_metrics() {
    SERVICE_REQUESTS.register();
    SERVICE_SLOW_REQUESTS.register();
    FILTERS_REGISTERED.register();
}

/// Tuning knobs for [`FilterServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (concurrently served connections).
    pub workers: usize,
    /// Accepted connections that may queue for a free worker before
    /// the accept thread itself blocks.
    pub backlog: usize,
    /// Per-connection frame payload limit; larger length prefixes are
    /// refused before allocation.
    pub max_frame: u32,
    /// Socket read timeout — the cadence at which idle workers poll
    /// the shutdown flag.
    pub read_timeout: Duration,
    /// Largest `capacity` a CREATE may request (bounds server memory
    /// taken by one request).
    pub max_capacity: u64,
    /// Requests slower than this land in the slow-request log (and
    /// bump the slow-request counters). METRICS renders the log as
    /// `# slow ...` comment lines with opcode/backend/batch context.
    pub slow_request_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 64,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(50),
            max_capacity: 1 << 28,
            slow_request_threshold: Duration::from_millis(10),
        }
    }
}

/// A filter instance the server can host.
///
/// The five backends cover the tutorial's concurrency spectrum: a
/// wait-free atomic blocked Bloom (insert/contains only), a sharded
/// cuckoo filter (adds deletion), a sharded counting quotient filter
/// (adds multiplicity counts), the SIMD register-blocked Bloom
/// (insert/contains at one mask compare per key), and the compacting
/// filter LSM (insert/contains at static-filter space, background
/// compaction into fuse tiers).
pub enum ServedFilter {
    /// Wait-free insert/contains; no deletion, no counts.
    Bloom(AtomicBlockedBloomFilter),
    /// Deletable membership via sharded cuckoo.
    Cuckoo(Sharded<CuckooFilter>),
    /// Counting + deletable via sharded CQF.
    Cqf(Sharded<CountingQuotientFilter>),
    /// Sharded register-blocked Bloom: insert/contains through the
    /// vectorised probe engine; no deletion, no counts.
    RegisterBloom(Sharded<RegisterBlockedBloomFilter>),
    /// Compacting filter LSM: wait-free insert/contains, background
    /// compaction into static fuse tiers; no deletion, no counts.
    Compacting(CompactingFilter),
}

impl ServedFilter {
    /// Which wire-protocol backend tag this instance answers to.
    pub fn backend(&self) -> Backend {
        match self {
            ServedFilter::Bloom(_) => Backend::AtomicBloom,
            ServedFilter::Cuckoo(_) => Backend::ShardedCuckoo,
            ServedFilter::Cqf(_) => Backend::ShardedCqf,
            ServedFilter::RegisterBloom(_) => Backend::RegisterBloom,
            ServedFilter::Compacting(_) => Backend::Compacting,
        }
    }

    fn len(&self) -> usize {
        match self {
            ServedFilter::Bloom(f) => f.len(),
            ServedFilter::Cuckoo(f) => f.len(),
            ServedFilter::Cqf(f) => f.len(),
            ServedFilter::RegisterBloom(f) => f.len(),
            ServedFilter::Compacting(f) => f.len(),
        }
    }

    fn size_in_bytes(&self) -> usize {
        match self {
            ServedFilter::Bloom(f) => f.size_in_bytes(),
            ServedFilter::Cuckoo(f) => f.size_in_bytes(),
            ServedFilter::Cqf(f) => f.size_in_bytes(),
            ServedFilter::RegisterBloom(f) => f.size_in_bytes(),
            ServedFilter::Compacting(f) => f.size_in_bytes(),
        }
    }

    /// Per-shard operation counts for the sharded backends (`None`
    /// for the unsharded atomic Bloom). METRICS renders these as
    /// `bb_filter_shard_ops_total{name,shard}` so skewed key streams
    /// show up as skewed shard loads.
    pub fn shard_ops(&self) -> Option<Vec<u64>> {
        match self {
            ServedFilter::Bloom(_) => None,
            ServedFilter::Cuckoo(f) => Some(f.shard_ops()),
            ServedFilter::Cqf(f) => Some(f.shard_ops()),
            ServedFilter::RegisterBloom(f) => Some(f.shard_ops()),
            ServedFilter::Compacting(_) => None,
        }
    }
}

/// Per-request context carried from dispatch to the slow-request log.
#[derive(Clone, Copy)]
struct ReqInfo {
    /// Wire opcode (1..=7), or 0 when the payload failed decoding.
    op: u8,
    /// Backend the request resolved to, when it named a filter.
    backend: Option<Backend>,
    /// Keys carried by the request (batch size).
    batch: u32,
}

impl ReqInfo {
    fn bare(op: u8) -> ReqInfo {
        ReqInfo {
            op,
            backend: None,
            batch: 0,
        }
    }

    /// Pack into the event ring's second payload slot:
    /// `op << 56 | (backend_tag + 1) << 48 | batch` (backend 0 means
    /// "none").
    fn packed(self) -> u64 {
        let be = match self.backend {
            None => 0u64,
            Some(Backend::AtomicBloom) => 1,
            Some(Backend::ShardedCuckoo) => 2,
            Some(Backend::ShardedCqf) => 3,
            Some(Backend::RegisterBloom) => 4,
            Some(Backend::Compacting) => 5,
        };
        (self.op as u64) << 56 | be << 48 | self.batch as u64
    }

    /// Inverse of [`ReqInfo::packed`], for rendering the slow log.
    fn unpack(b: u64) -> (u8, &'static str, u32) {
        let op = (b >> 56) as u8;
        let backend = match (b >> 48) & 0xff {
            1 => "atomic-bloom",
            2 => "sharded-cuckoo",
            3 => "sharded-cqf",
            4 => "register-bloom",
            5 => "compacting",
            _ => "-",
        };
        (op, backend, b as u32)
    }

    fn op_name(op: u8) -> &'static str {
        match op {
            1 => "CREATE",
            2 => "INSERT",
            3 => "CONTAINS",
            4 => "COUNT",
            5 => "DELETE",
            6 => "STATS",
            7 => "METRICS",
            _ => "BAD",
        }
    }
}

/// Cuckoo fingerprint width hitting a target FPR: the filter's false
/// positive rate is ≈ `2b / 2^f` with `b = 4` slots per bucket, so
/// `f = ceil(log2(8 / eps))`, clamped to the implementation's 2..=32.
pub fn cuckoo_fp_bits(eps: f64) -> u32 {
    ((8.0 / eps).log2().ceil() as u32).clamp(2, 32)
}

/// Build the Bloom backend exactly as the server does for a CREATE
/// with these parameters — tests use this to construct a bit-identical
/// in-process oracle.
pub fn build_atomic_bloom(capacity: u64, eps: f64, seed: u64) -> AtomicBlockedBloomFilter {
    AtomicBlockedBloomFilter::with_seed(capacity as usize, eps, seed)
}

/// Build the sharded-cuckoo backend exactly as the server does
/// (per-shard seeds derived from `seed` so shards stay decorrelated
/// but the whole construction is reproducible).
pub fn build_sharded_cuckoo(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<CuckooFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    let fp_bits = cuckoo_fp_bits(eps);
    Sharded::new(shard_bits, |i| {
        CuckooFilter::with_params(
            per_shard,
            fp_bits,
            cuckoo::filter::BUCKET_SIZE,
            seed ^ (0xcc00 + i as u64),
        )
    })
}

/// Build the sharded-CQF backend exactly as the server does. Shards
/// auto-expand, so a CREATE capacity is a sizing hint rather than a
/// hard limit (matching the CQF's own `for_capacity` contract).
pub fn build_sharded_cqf(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<CountingQuotientFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    let slots = (per_shard as f64 / quotient::qf::DEFAULT_MAX_LOAD).ceil() as usize;
    let q = slots.next_power_of_two().trailing_zeros().max(4);
    let r = ((1.0 / eps).log2().ceil() as u32).clamp(2, 60.min(64 - q));
    Sharded::new(shard_bits, |i| {
        let mut f = CountingQuotientFilter::with_seed(q, r, seed ^ (0xc0f0 + i as u64));
        f.set_auto_expand(true);
        f
    })
}

/// Build the register-blocked Bloom backend exactly as the server
/// does (per-shard seeds derived from `seed`, matching the other
/// sharded builders so tests can construct bit-identical oracles).
pub fn build_sharded_register_bloom(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<RegisterBlockedBloomFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    Sharded::new(shard_bits, |i| {
        RegisterBlockedBloomFilter::with_seed(per_shard, eps, seed ^ (0x4b10 + i as u64))
    })
}

/// Build the compacting backend exactly as the server does for a
/// CREATE with these parameters. The memtable front holds 1/16th of
/// the stated capacity (floored at 1024 keys) so steady-state space
/// is dominated by the static fuse tiers, not the mutable front.
pub fn build_compacting(capacity: u64, eps: f64, seed: u64) -> CompactingFilter {
    let front = ((capacity as usize) / 16).max(1024);
    CompactingFilter::new(CompactingConfig::new(front, eps, seed))
}

struct Shared {
    registry: RwLock<BTreeMap<String, Arc<ServedFilter>>>,
    metrics: ServerMetrics,
    /// Slow-request log: newest 256 requests over the threshold, with
    /// packed opcode/backend/batch context (see [`ReqInfo::packed`]).
    slowlog: EventRing,
    stop: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// A running filter server. Dropping the handle without calling
/// [`FilterServer::shutdown`] detaches the threads (they keep serving
/// until the process exits); tests and the load generator call
/// `shutdown` for a deterministic drain.
pub struct FilterServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FilterServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// accept thread plus worker pool.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<FilterServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Eager registration: every layer's families render in the
        // METRICS exposition from the first scrape, traffic or not.
        bloom::register_metrics();
        cuckoo::register_metrics();
        quotient::register_metrics();
        concurrent::register_metrics();
        compacting::register_metrics();
        register_metrics();
        let shared = Arc::new(Shared {
            registry: RwLock::new(BTreeMap::new()),
            metrics: ServerMetrics::new(),
            slowlog: EventRing::new(256),
            stop: AtomicBool::new(false),
            config,
        });

        let (tx, rx) = sync_channel::<TcpStream>(shared.config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("filter-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("filter-accept".into())
                .spawn(move || accept_loop(&shared, &listener, tx))
                .expect("spawn accept thread")
        };

        Ok(FilterServer {
            shared,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Racing snapshot of the server metrics (same data STATS serves).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Install a filter directly, bypassing the wire CREATE (used by
    /// the example and by tests seeding large filters in-process).
    /// Returns `false` when the name is already taken.
    pub fn register(&self, name: &str, filter: ServedFilter) -> bool {
        let mut reg = write_lock(&self.shared.registry);
        match reg.entry(name.to_string()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(Arc::new(filter));
                FILTERS_REGISTERED.add(1);
                true
            }
        }
    }

    /// Render the same Prometheus-text exposition the METRICS opcode
    /// serves (in-process scrape for tests and examples).
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Stop accepting, drain in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the accept thread out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    tx: std::sync::mpsc::SyncSender<TcpStream>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping() {
                    // The wake-up self-connection (or a late client)
                    // lands here; refuse and exit.
                    drop(stream);
                    break;
                }
                shared.metrics.connections_opened.inc();
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if shared.stopping() {
                    break;
                }
                // Transient accept errors (e.g. ECONNABORTED) are not
                // fatal to the listener.
            }
        }
    }
    // Dropping `tx` disconnects the channel; workers exit once the
    // queue is empty.
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match next {
            Ok(stream) => {
                if shared.stopping() {
                    drop(stream);
                    continue; // keep draining the queue until disconnect
                }
                serve_connection(shared, stream);
                shared.metrics.connections_closed.inc();
            }
            Err(_) => break,
        }
    }
}

/// Serve one connection to completion: frame in, response out, until
/// the peer closes, errors, or the server drains for shutdown.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let m = &shared.metrics;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut frames = FrameReader::new(read_half, shared.config.max_frame);
    loop {
        match frames.read_frame() {
            Ok(FrameEvent::Frame(payload)) => {
                m.frames_received.inc();
                m.bytes_in.add(payload.len() as u64);
                let t0 = Instant::now();
                let (resp, info) = dispatch(shared, &payload);
                if !write_response(shared, &mut stream, &resp) {
                    break;
                }
                let dt = t0.elapsed();
                m.request_latency.record(dt);
                SERVICE_REQUESTS.inc();
                if dt >= shared.config.slow_request_threshold {
                    m.slow_requests.inc();
                    SERVICE_SLOW_REQUESTS.inc();
                    shared.slowlog.emit(
                        EventKind::SlowRequest,
                        dt.as_nanos().min(u64::MAX as u128) as u64,
                        info.packed(),
                    );
                }
                if shared.stopping() {
                    break; // in-flight request drained; refuse further
                }
            }
            Ok(FrameEvent::Closed) => break,
            Err(FrameError::Timeout) => {
                if shared.stopping() {
                    break;
                }
            }
            Err(FrameError::Oversized(n)) => {
                // The unread body makes stream resync impossible:
                // answer with the reason, then close.
                m.protocol_errors.inc();
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!("frame length {n} exceeds limit {}", shared.config.max_frame),
                };
                write_response(shared, &mut stream, &resp);
                break;
            }
            Err(FrameError::Disconnected) => {
                m.disconnects_mid_frame.inc();
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
}

fn write_response(shared: &Shared, stream: &mut TcpStream, resp: &Response) -> bool {
    let m = &shared.metrics;
    if matches!(resp, Response::Error { .. }) {
        m.error_responses.inc();
    }
    let bytes = resp.encode();
    match write_frame(stream, &bytes) {
        Ok(()) => {
            m.responses_sent.inc();
            m.bytes_out.add(bytes.len() as u64);
            true
        }
        Err(_) => false,
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn filter_err(e: FilterError) -> Response {
    err(ErrorCode::Filter, e.to_string())
}

/// Decode one frame payload and execute it against the registry.
/// Returns the response plus the request context the slow-request log
/// records.
fn dispatch(shared: &Shared, payload: &[u8]) -> (Response, ReqInfo) {
    let m = &shared.metrics;
    let req = match Request::decode(payload) {
        Ok(Ok(req)) => req,
        Ok(Err(op)) => {
            m.protocol_errors.inc();
            return (
                err(ErrorCode::UnknownOpcode, format!("unknown opcode {op}")),
                ReqInfo::bare(0),
            );
        }
        Err(HeaderError::Version(v)) => {
            m.protocol_errors.inc();
            return (
                err(
                    ErrorCode::UnsupportedVersion,
                    format!(
                        "version {v}, this server speaks {}",
                        crate::proto::PROTO_VERSION
                    ),
                ),
                ReqInfo::bare(0),
            );
        }
        Err(HeaderError::Serial(e)) => {
            m.protocol_errors.inc();
            return (
                err(ErrorCode::BadFrame, format!("malformed payload: {e}")),
                ReqInfo::bare(0),
            );
        }
    };
    match req {
        Request::Create {
            name,
            backend,
            capacity,
            eps,
            shard_bits,
            seed,
            blob,
        } => (
            handle_create(
                shared, &name, backend, capacity, eps, shard_bits, seed, &blob,
            ),
            ReqInfo {
                op: 1,
                backend: Some(backend),
                batch: 0,
            },
        ),
        Request::Insert { name, keys } => {
            let (resp, backend) = handle_insert(shared, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 2,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Contains { name, keys } => {
            let (resp, backend) = handle_contains(shared, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 3,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Count { name, keys } => {
            let (resp, backend) = handle_count(shared, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 4,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Delete { name, keys } => {
            let (resp, backend) = handle_delete(shared, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 5,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Stats => (handle_stats(shared), ReqInfo::bare(6)),
        Request::Metrics => (Response::Text(render_metrics(shared)), ReqInfo::bare(7)),
    }
}

// `Response` is as large as its Stats variant; error responses here
// are always the small Error variant and are immediately serialised,
// so boxing would only add an allocation to the hot error path.
#[allow(clippy::result_large_err)]
fn lookup(shared: &Shared, name: &str) -> Result<Arc<ServedFilter>, Response> {
    read_lock(&shared.registry)
        .get(name)
        .cloned()
        .ok_or_else(|| err(ErrorCode::NoSuchFilter, format!("no filter named '{name}'")))
}

#[allow(clippy::too_many_arguments)]
fn handle_create(
    shared: &Shared,
    name: &str,
    backend: Backend,
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
    blob: &[u8],
) -> Response {
    if !name.chars().all(|c| c.is_ascii_graphic()) {
        return err(
            ErrorCode::BadName,
            "filter names must be printable ASCII without spaces",
        );
    }
    // Fast-path duplicate check without building anything.
    if read_lock(&shared.registry).contains_key(name) {
        return err(ErrorCode::FilterExists, format!("'{name}' already exists"));
    }
    let filter = if blob.is_empty() {
        if capacity == 0 || capacity > shared.config.max_capacity {
            return err(
                ErrorCode::Filter,
                format!(
                    "capacity {capacity} outside 1..={}",
                    shared.config.max_capacity
                ),
            );
        }
        if !(eps.is_finite() && eps > 0.0 && eps <= 0.5) {
            return err(ErrorCode::Filter, format!("eps {eps} outside (0, 0.5]"));
        }
        if shard_bits > MAX_SHARD_BITS {
            return err(
                ErrorCode::Filter,
                format!("shard_bits {shard_bits} > {MAX_SHARD_BITS}"),
            );
        }
        match backend {
            Backend::AtomicBloom => ServedFilter::Bloom(build_atomic_bloom(capacity, eps, seed)),
            Backend::ShardedCuckoo => {
                ServedFilter::Cuckoo(build_sharded_cuckoo(capacity, eps, shard_bits, seed))
            }
            Backend::ShardedCqf => {
                ServedFilter::Cqf(build_sharded_cqf(capacity, eps, shard_bits, seed))
            }
            Backend::RegisterBloom => ServedFilter::RegisterBloom(build_sharded_register_bloom(
                capacity, eps, shard_bits, seed,
            )),
            Backend::Compacting => ServedFilter::Compacting(build_compacting(capacity, eps, seed)),
        }
    } else {
        // A pre-built filter shipped over the wire; `from_bytes` does
        // the structural validation (untrusted input).
        match backend {
            Backend::AtomicBloom => {
                return err(
                    ErrorCode::Unsupported,
                    "atomic-bloom does not support pre-built blobs",
                )
            }
            Backend::ShardedCuckoo => match CuckooFilter::from_bytes(blob) {
                Ok(f) => ServedFilter::Cuckoo(Sharded::from_shards(vec![f])),
                Err(e) => return err(ErrorCode::Filter, format!("bad cuckoo blob: {e}")),
            },
            Backend::ShardedCqf => match CountingQuotientFilter::from_bytes(blob) {
                Ok(f) => ServedFilter::Cqf(Sharded::from_shards(vec![f])),
                Err(e) => return err(ErrorCode::Filter, format!("bad cqf blob: {e}")),
            },
            Backend::RegisterBloom => match RegisterBlockedBloomFilter::from_bytes(blob) {
                Ok(f) => ServedFilter::RegisterBloom(Sharded::from_shards(vec![f])),
                Err(e) => return err(ErrorCode::Filter, format!("bad register-bloom blob: {e}")),
            },
            Backend::Compacting => match CompactingFilter::from_bytes(blob) {
                Ok(f) => ServedFilter::Compacting(f),
                Err(e) => return err(ErrorCode::Filter, format!("bad compacting blob: {e}")),
            },
        }
    };
    // Re-check under the write lock: a racing CREATE may have won.
    match write_lock(&shared.registry).entry(name.to_string()) {
        Entry::Occupied(_) => err(ErrorCode::FilterExists, format!("'{name}' already exists")),
        Entry::Vacant(v) => {
            v.insert(Arc::new(filter));
            FILTERS_REGISTERED.add(1);
            Response::Ok
        }
    }
}

fn handle_insert(shared: &Shared, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(shared, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    shared.metrics.keys_processed.add(keys.len() as u64);
    if keys.len() > 1 {
        shared.metrics.batched_ops.add(keys.len() as u64);
    }
    let resp = match &*f {
        ServedFilter::Bloom(b) => {
            b.insert_batch(keys);
            Response::Ok
        }
        ServedFilter::Cuckoo(c) => match c.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
        ServedFilter::Cqf(q) => match q.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
        ServedFilter::RegisterBloom(r) => match r.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
        ServedFilter::Compacting(f) => {
            for &k in keys {
                f.insert(k);
            }
            Response::Ok
        }
    };
    (resp, backend)
}

fn handle_contains(shared: &Shared, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(shared, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    shared.metrics.keys_processed.add(keys.len() as u64);
    if keys.len() > 1 {
        shared.metrics.batched_ops.add(keys.len() as u64);
    }
    let resp = Response::Bools(match &*f {
        ServedFilter::Bloom(b) => b.contains_batch(keys),
        ServedFilter::Cuckoo(c) => c.contains_batch(keys),
        ServedFilter::Cqf(q) => q.contains_batch(keys),
        ServedFilter::RegisterBloom(r) => r.contains_batch(keys),
        ServedFilter::Compacting(f) => f.contains_batch(keys),
    });
    (resp, backend)
}

fn handle_count(shared: &Shared, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(shared, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    let resp = match &*f {
        ServedFilter::Cqf(q) => {
            shared.metrics.keys_processed.add(keys.len() as u64);
            Response::Counts(q.count_batch(keys))
        }
        other => err(
            ErrorCode::Unsupported,
            format!("{} does not support COUNT", other.backend().name()),
        ),
    };
    (resp, backend)
}

fn handle_delete(shared: &Shared, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(shared, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    let resp = match &*f {
        ServedFilter::Cuckoo(c) => {
            shared.metrics.keys_processed.add(keys.len() as u64);
            match c.remove_batch(keys) {
                Ok(hits) => Response::Bools(hits),
                Err(e) => filter_err(e),
            }
        }
        ServedFilter::Cqf(q) => {
            shared.metrics.keys_processed.add(keys.len() as u64);
            // Remove one occurrence per listed key; a missing key
            // (`FilterError::NotFound`) is a per-key `false`, not a
            // request failure.
            let hits = keys.iter().map(|&k| q.remove_count(k, 1).is_ok()).collect();
            Response::Bools(hits)
        }
        other => err(
            ErrorCode::Unsupported,
            format!("{} does not support DELETE", other.backend().name()),
        ),
    };
    (resp, backend)
}

/// Most shards a single filter may render as per-shard series (a
/// 4096-shard filter would otherwise dominate the scrape).
const MAX_SHARD_SERIES: usize = 64;

/// Assemble the full METRICS exposition: every registered telemetry
/// family (filter-layer instrumentation), this server's request
/// counters and latency histogram, the filter inventory as labelled
/// gauges, per-shard op counts, and the slow-request log rendered as
/// `# slow ...` comment lines (free-standing comments are legal
/// Prometheus text).
fn render_metrics(shared: &Shared) -> String {
    let mut out = telemetry::render_registry();
    let m = &shared.metrics;
    let mut r = TextRenderer::new();
    for (name, help, v) in [
        (
            "bb_server_connections_opened_total",
            "Connections accepted.",
            m.connections_opened.get(),
        ),
        (
            "bb_server_connections_closed_total",
            "Connections fully torn down.",
            m.connections_closed.get(),
        ),
        (
            "bb_server_frames_received_total",
            "Complete frames received.",
            m.frames_received.get(),
        ),
        (
            "bb_server_responses_sent_total",
            "Response frames written.",
            m.responses_sent.get(),
        ),
        (
            "bb_server_protocol_errors_total",
            "Malformed payloads, bad versions, unknown opcodes, oversized frames.",
            m.protocol_errors.get(),
        ),
        (
            "bb_server_disconnects_mid_frame_total",
            "Peers that vanished in the middle of a frame.",
            m.disconnects_mid_frame.get(),
        ),
        (
            "bb_server_error_responses_total",
            "Requests answered with an error response.",
            m.error_responses.get(),
        ),
        (
            "bb_server_keys_processed_total",
            "Keys processed across INSERT/CONTAINS/COUNT/DELETE batches.",
            m.keys_processed.get(),
        ),
        (
            "bb_server_batched_ops_total",
            "Keys served through the batched probe kernels.",
            m.batched_ops.get(),
        ),
        (
            "bb_server_bytes_in_total",
            "Payload bytes read.",
            m.bytes_in.get(),
        ),
        (
            "bb_server_bytes_out_total",
            "Payload bytes written.",
            m.bytes_out.get(),
        ),
        (
            "bb_server_slow_requests_total",
            "Requests slower than the slow-request threshold.",
            m.slow_requests.get(),
        ),
    ] {
        r.counter(name, help, v);
    }
    r.histogram(
        "bb_server_request_latency_ns",
        "Server-side request service time (decode to response written).",
        &m.request_latency.snapshot(),
    );

    // Inventory: one labelled series per registered filter, plus
    // per-shard op counts for the sharded backends.
    r.header(
        "bb_filter_keys",
        "Distinct keys represented per served filter.",
        FamilyKind::Gauge,
    );
    let reg = read_lock(&shared.registry);
    for (name, f) in reg.iter() {
        r.sample(
            "bb_filter_keys",
            &[("name", name), ("backend", f.backend().name())],
            f.len() as f64,
        );
    }
    r.header(
        "bb_filter_size_bytes",
        "Heap bytes per served filter.",
        FamilyKind::Gauge,
    );
    for (name, f) in reg.iter() {
        r.sample(
            "bb_filter_size_bytes",
            &[("name", name), ("backend", f.backend().name())],
            f.size_in_bytes() as f64,
        );
    }
    r.header(
        "bb_filter_shard_ops_total",
        "Operations routed to each shard of a sharded filter.",
        FamilyKind::Counter,
    );
    for (name, f) in reg.iter() {
        let Some(ops) = f.shard_ops() else { continue };
        if ops.len() > MAX_SHARD_SERIES {
            continue;
        }
        for (i, &n) in ops.iter().enumerate() {
            let shard = i.to_string();
            r.sample(
                "bb_filter_shard_ops_total",
                &[("name", name), ("shard", &shard)],
                n as f64,
            );
        }
    }
    drop(reg);

    // Slow-request log, newest last. Comment lines parse as legal
    // exposition text; scrapers that only want families skip them.
    for ev in shared.slowlog.snapshot() {
        let (op, backend, batch) = ReqInfo::unpack(ev.b);
        r.comment(&format!(
            "slow seq={} t_us={} op={} backend={} batch={} latency_ns={}",
            ev.seq,
            ev.t_us,
            ReqInfo::op_name(op),
            backend,
            batch,
            ev.a,
        ));
    }
    out.push_str(&r.finish());
    out
}

fn handle_stats(shared: &Shared) -> Response {
    let filters = read_lock(&shared.registry)
        .iter()
        .map(|(name, f)| FilterRow {
            name: name.clone(),
            backend: f.backend(),
            len: f.len() as u64,
            size_in_bytes: f.size_in_bytes() as u64,
        })
        .collect();
    Response::Stats(StatsReport {
        counters: shared.metrics.snapshot(),
        filters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::FilterClient;

    fn quick_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            read_timeout: Duration::from_millis(10),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serve_create_insert_query_shutdown() {
        let server = FilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        c.create("t", Backend::AtomicBloom, 10_000, 0.01, 0, 7)
            .unwrap();
        c.insert("t", &[1, 2, 3]).unwrap();
        let got = c.contains("t", &[1, 2, 3, 999_999]).unwrap();
        assert_eq!(&got[..3], &[true, true, true]);
        let stats = c.stats().unwrap();
        assert_eq!(stats.filters.len(), 1);
        assert_eq!(stats.filters[0].name, "t");
        assert!(stats.counters.frames_received >= 3);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn unknown_filter_and_duplicate_create_report_codes() {
        let server = FilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        let e = c.insert("nope", &[1]).unwrap_err();
        assert!(matches!(
            e,
            crate::client::ClientError::Remote {
                code: ErrorCode::NoSuchFilter,
                ..
            }
        ));
        c.create("dup", Backend::ShardedCuckoo, 1_000, 0.01, 2, 1)
            .unwrap();
        let e = c
            .create("dup", Backend::ShardedCuckoo, 1_000, 0.01, 2, 1)
            .unwrap_err();
        assert!(matches!(
            e,
            crate::client::ClientError::Remote {
                code: ErrorCode::FilterExists,
                ..
            }
        ));
        drop(c);
        server.shutdown();
    }
}
