//! The threaded filter server: a thread-pooled `std::net` TCP
//! transport over the shared [`crate::engine::Engine`] core.
//!
//! # Threading model
//!
//! One *accept* thread pulls connections off the listener and feeds a
//! bounded queue (`mpsc::sync_channel`); a fixed pool of *worker*
//! threads pulls from that queue and serves one connection at a time,
//! request-per-frame (thread-per-connection semantics over a bounded
//! pool — the classic shape for a filter sidecar where connections are
//! few and long-lived). There is no async runtime: the container
//! builds offline and the paper's measurements concern filter
//! throughput, not connection scaling. For connection scaling, see
//! [`crate::evented::EventedFilterServer`], which serves the same
//! engine from a readiness loop.
//!
//! Workers read with a short socket timeout. [`crate::proto::FrameReader`]
//! retains partial progress across timeouts, so the timeout is purely
//! a tick on which the worker polls the shutdown flag — it never
//! corrupts the stream position of a slow writer. When
//! [`ServerConfig::idle_timeout`] is set, those ticks also feed an
//! idle deadline: a connection that goes too long without completing
//! a frame is closed (the slow-loris backstop).
//!
//! # Shutdown
//!
//! [`FilterServer::shutdown`] sets a flag, nudges the accept thread
//! awake with a self-connection, and joins everything. Workers finish
//! the request they are executing (its response is written) and then
//! close; queued-but-unserved connections are dropped. That is the
//! "drain in-flight, refuse new" contract, and the evented server
//! implements the same one.

use crate::engine::{dispatch, render_metrics, Engine};
use crate::proto::{write_frame, ErrorCode, FrameError, FrameEvent, FrameReader, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

pub use crate::engine::{
    build_atomic_bloom, build_compacting, build_sharded_cqf, build_sharded_cuckoo,
    build_sharded_register_bloom, build_sharded_two_choice, cuckoo_fp_bits, register_metrics,
    ServedFilter, ServerConfig, FILTERS_REGISTERED, SERVICE_REQUESTS, SERVICE_SLOW_REQUESTS,
};

/// A running filter server. Dropping the handle without calling
/// [`FilterServer::shutdown`] detaches the threads (they keep serving
/// until the process exits); tests and the load generator call
/// `shutdown` for a deterministic drain.
pub struct FilterServer {
    engine: Arc<Engine>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FilterServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// accept thread plus worker pool.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<FilterServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Belt-and-braces: std sets SO_REUSEADDR before binding on
        // unix; this asserts it at the kernel so a quick restart can
        // rebind through TIME_WAIT.
        eventloop::net::set_reuseaddr(&listener)?;
        // Eager registration: every layer's families render in the
        // METRICS exposition from the first scrape, traffic or not.
        crate::engine::register_all_layers();
        let engine = Arc::new(Engine::new(config));

        let (tx, rx) = sync_channel::<TcpStream>(engine.config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..engine.config.workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("filter-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("filter-accept".into())
                .spawn(move || accept_loop(&engine, &listener, tx))
                .expect("spawn accept thread")
        };

        Ok(FilterServer {
            engine,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Racing snapshot of the server metrics (same data STATS serves).
    pub fn metrics(&self) -> &crate::metrics::ServerMetrics {
        self.engine.metrics()
    }

    /// Install a filter directly, bypassing the wire CREATE (used by
    /// the example and by tests seeding large filters in-process).
    /// Returns `false` when the name is already taken.
    pub fn register(&self, name: &str, filter: ServedFilter) -> bool {
        self.engine.register(name, filter)
    }

    /// Render the same Prometheus-text exposition the METRICS opcode
    /// serves (in-process scrape for tests and examples).
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.engine)
    }

    /// Stop accepting, drain in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.engine.stop.store(true, Ordering::Relaxed);
        // Wake the accept thread out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    engine: &Engine,
    listener: &TcpListener,
    tx: std::sync::mpsc::SyncSender<TcpStream>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if engine.stopping() {
                    // The wake-up self-connection (or a late client)
                    // lands here; refuse and exit.
                    drop(stream);
                    break;
                }
                engine.metrics.connections_opened.inc();
                engine.metrics.open_connections.add(1);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if engine.stopping() {
                    break;
                }
                // Transient accept errors (e.g. ECONNABORTED) are not
                // fatal to the listener.
                engine.metrics.accept_errors.inc();
            }
        }
    }
    // Dropping `tx` disconnects the channel; workers exit once the
    // queue is empty.
}

fn worker_loop(engine: &Engine, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match next {
            Ok(stream) => {
                if engine.stopping() {
                    drop(stream);
                    engine.metrics.open_connections.add(-1);
                    continue; // keep draining the queue until disconnect
                }
                serve_connection(engine, stream);
                engine.metrics.connections_closed.inc();
                engine.metrics.open_connections.add(-1);
            }
            Err(_) => break,
        }
    }
}

/// Serve one connection to completion: frame in, response out, until
/// the peer closes, errors, idles past the deadline, or the server
/// drains for shutdown.
fn serve_connection(engine: &Engine, mut stream: TcpStream) {
    let m = &engine.metrics;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(engine.config.read_timeout));
    let peer = stream.peer_addr().ok();
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut frames = FrameReader::new(read_half, engine.config.max_frame);
    // The idle clock restarts on every *completed* frame, so a peer
    // dribbling one byte per read timeout still hits the deadline
    // unless its frames actually finish (slow-loris hardening).
    let mut last_frame = Instant::now();
    loop {
        match frames.read_frame() {
            Ok(FrameEvent::Frame(payload, ctx)) => {
                last_frame = Instant::now();
                m.frames_received.inc();
                m.bytes_in.add(payload.len() as u64);
                let t0 = Instant::now();
                let req_trace = telemetry::trace::begin("server:request", ctx);
                let (resp, info) = dispatch(engine, &payload);
                let error = matches!(resp, Response::Error { .. });
                if !write_response(engine, &mut stream, &resp) {
                    req_trace.finish(false, true);
                    break;
                }
                // One frame per blocking read loop: the threaded
                // server's pipelining depth is 1 by construction.
                m.raise_pipelined_depth(1);
                let dt = t0.elapsed();
                let slow = dt >= engine.config.slow_request_threshold;
                // Only a slow request reads (and, for an unsampled
                // one, mints) its trace id — the fast path stays free
                // of id work.
                engine.record_request(dt, info, peer, if slow { req_trace.trace_id() } else { 0 });
                req_trace.finish_timed(dt, slow, error);
                if engine.stopping() {
                    break; // in-flight request drained; refuse further
                }
            }
            Ok(FrameEvent::Closed) => break,
            Err(FrameError::Timeout) => {
                if engine.stopping() {
                    break;
                }
                if let Some(idle) = engine.config.idle_timeout {
                    if last_frame.elapsed() >= idle {
                        break;
                    }
                }
            }
            Err(FrameError::Oversized(n)) => {
                // The unread body makes stream resync impossible:
                // answer with the reason, then close.
                m.protocol_errors.inc();
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!("frame length {n} exceeds limit {}", engine.config.max_frame),
                };
                write_response(engine, &mut stream, &resp);
                break;
            }
            Err(FrameError::Disconnected) => {
                m.disconnects_mid_frame.inc();
                break;
            }
            Err(FrameError::Io(e)) => {
                // InvalidData is the reader refusing a traced frame
                // shorter than its context: answer with the reason,
                // then close (same contract as the evented path).
                if e.kind() == io::ErrorKind::InvalidData {
                    m.protocol_errors.inc();
                    let resp = Response::Error {
                        code: ErrorCode::BadFrame,
                        message: "traced frame shorter than its trace context".into(),
                    };
                    write_response(engine, &mut stream, &resp);
                }
                break;
            }
        }
    }
}

fn write_response(engine: &Engine, stream: &mut TcpStream, resp: &Response) -> bool {
    let m = &engine.metrics;
    if matches!(resp, Response::Error { .. }) {
        m.error_responses.inc();
    }
    let bytes = resp.encode();
    // Counted at commit time, BEFORE the write syscall — the same
    // instant the evented transport counts (when the response enters
    // its outbound buffer). Counting after the write would let a peer
    // read its answer and observe a STATS snapshot in which that
    // answer is not yet counted; commit-time counting keeps the two
    // transports' deterministic counters bit-identical.
    m.responses_sent.inc();
    m.bytes_out.add(bytes.len() as u64);
    write_frame(stream, &bytes).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::FilterClient;
    use crate::proto::Backend;
    use std::time::Duration;

    fn quick_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            read_timeout: Duration::from_millis(10),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serve_create_insert_query_shutdown() {
        let server = FilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        c.create("t", Backend::AtomicBloom, 10_000, 0.01, 0, 7)
            .unwrap();
        c.insert("t", &[1, 2, 3]).unwrap();
        let got = c.contains("t", &[1, 2, 3, 999_999]).unwrap();
        assert_eq!(&got[..3], &[true, true, true]);
        let stats = c.stats().unwrap();
        assert_eq!(stats.filters.len(), 1);
        assert_eq!(stats.filters[0].name, "t");
        assert!(stats.counters.frames_received >= 3);
        assert_eq!(stats.counters.open_connections, 1);
        assert_eq!(stats.counters.pipelined_depth, 1);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn unknown_filter_and_duplicate_create_report_codes() {
        let server = FilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        let e = c.insert("nope", &[1]).unwrap_err();
        assert!(matches!(
            e,
            crate::client::ClientError::Remote {
                code: ErrorCode::NoSuchFilter,
                ..
            }
        ));
        c.create("dup", Backend::ShardedCuckoo, 1_000, 0.01, 2, 1)
            .unwrap();
        let e = c
            .create("dup", Backend::ShardedCuckoo, 1_000, 0.01, 2, 1)
            .unwrap_err();
        assert!(matches!(
            e,
            crate::client::ClientError::Remote {
                code: ErrorCode::FilterExists,
                ..
            }
        ));
        drop(c);
        server.shutdown();
    }

    #[test]
    fn idle_timeout_closes_silent_connections() {
        let server = FilterServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                read_timeout: Duration::from_millis(5),
                idle_timeout: Some(Duration::from_millis(40)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        // Active clients are untouched by the deadline.
        c.create("t", Backend::AtomicBloom, 1_000, 0.01, 0, 7)
            .unwrap();
        // Then go silent: the server closes us, observable as the
        // next call failing rather than hanging.
        std::thread::sleep(Duration::from_millis(120));
        assert!(c.insert("t", &[1]).is_err());
        server.shutdown();
    }
}
