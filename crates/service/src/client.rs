//! A blocking client for the filter service.
//!
//! One [`FilterClient`] owns one TCP connection and speaks strict
//! request/response: every call writes a frame, then blocks until the
//! matching response frame arrives. There is no pipelining — batching
//! inside a frame is the protocol's amortisation mechanism, and a
//! closed-loop load generator simply runs one client per thread.

use crate::metrics::StatsReport;
use crate::proto::{
    write_frame_traced, Backend, ErrorCode, FrameError, FrameEvent, FrameReader, Request, Response,
    DEFAULT_MAX_FRAME,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use telemetry::trace::{Trace, TraceContext};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, write, or read).
    Io(io::Error),
    /// The server closed the connection instead of responding.
    ServerClosed,
    /// The response frame failed to decode.
    Protocol(filter_core::SerialError),
    /// The server answered with an error response.
    Remote {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong
    /// kind for this request (a server bug, not a transport fault).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Protocol(e) => write!(f, "bad response frame: {e}"),
            ClientError::Remote { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a [`crate::server::FilterServer`].
pub struct FilterClient {
    stream: TcpStream,
    frames: FrameReader<TcpStream>,
}

impl FilterClient {
    /// Connect with the default frame limit.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<FilterClient> {
        Self::connect_with_max_frame(addr, DEFAULT_MAX_FRAME)
    }

    /// Connect, refusing response frames larger than `max_frame`.
    pub fn connect_with_max_frame(
        addr: impl ToSocketAddrs,
        max_frame: u32,
    ) -> io::Result<FilterClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(FilterClient {
            stream,
            frames: FrameReader::new(read_half, max_frame),
        })
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_traced(req, None)
    }

    /// Send one request carrying an optional trace context and block
    /// for its response. With `ctx: None` the frame is byte-identical
    /// to an untraced [`FilterClient::call`]; with `Some` the server
    /// joins the caller's trace (its root span parents onto
    /// `ctx.span_id`).
    pub fn call_traced(
        &mut self,
        req: &Request,
        ctx: Option<TraceContext>,
    ) -> Result<Response, ClientError> {
        write_frame_traced(&mut self.stream, &req.encode(), ctx.as_ref())?;
        loop {
            match self.frames.read_frame() {
                Ok(FrameEvent::Frame(payload, _)) => {
                    return Response::decode(&payload).map_err(ClientError::Protocol)
                }
                Ok(FrameEvent::Closed) => return Err(ClientError::ServerClosed),
                // The client socket has no read timeout by default,
                // but tolerate one if the caller configured it.
                Err(FrameError::Timeout) => continue,
                Err(FrameError::Disconnected) => return Err(ClientError::ServerClosed),
                Err(FrameError::Oversized(_)) => {
                    return Err(ClientError::Protocol(filter_core::SerialError::Corrupt(
                        "oversized response frame",
                    )))
                }
                Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn expect_ok(resp: Response) -> Result<(), ClientError> {
        match resp {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Ok")),
        }
    }

    fn expect_bools(resp: Response) -> Result<Vec<bool>, ClientError> {
        match resp {
            Response::Bools(b) => Ok(b),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Bools")),
        }
    }

    /// CREATE a server-built filter.
    pub fn create(
        &mut self,
        name: &str,
        backend: Backend,
        capacity: u64,
        eps: f64,
        shard_bits: u32,
        seed: u64,
    ) -> Result<(), ClientError> {
        let resp = self.call(&Request::Create {
            name: name.to_string(),
            backend,
            capacity,
            eps,
            shard_bits,
            seed,
            blob: Vec::new(),
        })?;
        Self::expect_ok(resp)
    }

    /// CREATE from a pre-built serialized filter
    /// (`CuckooFilter::to_bytes` / `CountingQuotientFilter::to_bytes`).
    pub fn create_prebuilt(
        &mut self,
        name: &str,
        backend: Backend,
        blob: Vec<u8>,
    ) -> Result<(), ClientError> {
        let resp = self.call(&Request::Create {
            name: name.to_string(),
            backend,
            capacity: 0,
            eps: 0.0,
            shard_bits: 0,
            seed: 0,
            blob,
        })?;
        Self::expect_ok(resp)
    }

    /// INSERT a batch of keys.
    pub fn insert(&mut self, name: &str, keys: &[u64]) -> Result<(), ClientError> {
        let resp = self.call(&Request::Insert {
            name: name.to_string(),
            keys: keys.to_vec(),
        })?;
        Self::expect_ok(resp)
    }

    /// Batched CONTAINS; `out[i]` answers `keys[i]`.
    pub fn contains(&mut self, name: &str, keys: &[u64]) -> Result<Vec<bool>, ClientError> {
        let resp = self.call(&Request::Contains {
            name: name.to_string(),
            keys: keys.to_vec(),
        })?;
        Self::expect_bools(resp)
    }

    /// Batched MULTI_CONTAINS: which filters (across the whole
    /// registry, via the server's Bloofi index) contain each key?
    /// `out[i]` is the sorted list of matching filter names for
    /// `keys[i]`.
    pub fn multi_contains(&mut self, keys: &[u64]) -> Result<Vec<Vec<String>>, ClientError> {
        let resp = self.call(&Request::MultiContains {
            keys: keys.to_vec(),
        })?;
        match resp {
            Response::NameLists(lists) => Ok(lists),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted NameLists")),
        }
    }

    /// Batched COUNT (CQF backend only); `out[i]` answers `keys[i]`.
    pub fn count(&mut self, name: &str, keys: &[u64]) -> Result<Vec<u64>, ClientError> {
        let resp = self.call(&Request::Count {
            name: name.to_string(),
            keys: keys.to_vec(),
        })?;
        match resp {
            Response::Counts(c) => Ok(c),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Counts")),
        }
    }

    /// Batched DELETE; `out[i]` reports whether `keys[i]` matched.
    pub fn delete(&mut self, name: &str, keys: &[u64]) -> Result<Vec<bool>, ClientError> {
        let resp = self.call(&Request::Delete {
            name: name.to_string(),
            keys: keys.to_vec(),
        })?;
        Self::expect_bools(resp)
    }

    /// Fetch the server metrics snapshot and filter inventory.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let resp = self.call(&Request::Stats)?;
        match resp {
            Response::Stats(s) => Ok(s),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }

    /// Fetch the Prometheus-text metric exposition (the METRICS
    /// opcode): every telemetry family, server request counters, the
    /// filter inventory, and the slow-request log.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let resp = self.call(&Request::Metrics)?;
        match resp {
            Response::Text(t) => Ok(t),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Text")),
        }
    }

    /// SNAPSHOT: serialize a served filter into a portable blob. The
    /// returned `(backend, bytes)` pair feeds
    /// [`FilterClient::create_prebuilt`] on another server — the
    /// cluster layer's migration/replication primitive.
    pub fn snapshot(&mut self, name: &str) -> Result<(Backend, Vec<u8>), ClientError> {
        let resp = self.call(&Request::Snapshot {
            name: name.to_string(),
        })?;
        match resp {
            Response::Blob { backend, bytes } => Ok((backend, bytes)),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Blob")),
        }
    }

    /// FORGET: unregister a filter and drop its memory (the inverse
    /// of CREATE; used after a snapshot has been re-homed).
    pub fn forget(&mut self, name: &str) -> Result<(), ClientError> {
        let resp = self.call(&Request::Forget {
            name: name.to_string(),
        })?;
        Self::expect_ok(resp)
    }

    /// TRACES: drain the server's completed-trace store as structured
    /// spans ([`crate::cluster::ClusterClient::trace_route`] merges
    /// these across nodes into one cross-process trace).
    pub fn traces(&mut self) -> Result<Vec<Trace>, ClientError> {
        let resp = self.call(&Request::Traces { json: false })?;
        match resp {
            Response::Traces(t) => Ok(t),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Traces")),
        }
    }

    /// TRACES as Chrome `trace_event` JSON, loadable in
    /// `about:tracing` or Perfetto.
    pub fn traces_json(&mut self) -> Result<String, ClientError> {
        let resp = self.call(&Request::Traces { json: true })?;
        match resp {
            Response::Text(t) => Ok(t),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            _ => Err(ClientError::Unexpected("wanted Text")),
        }
    }

    /// The underlying stream (tests use this to simulate abrupt
    /// disconnects and raw writes).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
