//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message on the wire is a *frame*:
//!
//! ```text
//! +----------------+---------------------------+
//! | u32 LE length  |  payload (length bytes)   |
//! +----------------+---------------------------+
//! ```
//!
//! and every payload begins with the same 12-byte header, encoded by
//! `filter_core::serial`'s little-endian codec:
//!
//! ```text
//! u32 magic (0xBBF117AA) | u32 version (1) | u32 opcode | body...
//! ```
//!
//! Requests carry a filter name (length-prefixed UTF-8, ≤ 255 bytes)
//! and a batch of `u64` keys; batching is the unit of amortisation —
//! one frame, one registry lookup, one shard-grouped filter call for
//! any number of keys (the xor-filter paper's batch-lookup framing).
//! Membership answers come back bit-packed, 64 per word.
//!
//! Malformed payloads are rejected through the same
//! [`SerialError`]-checked decoding the persistence layer uses: a
//! truncated or corrupt frame can produce an error response, never a
//! panic or an over-read. Frame *lengths* are bounded before any
//! allocation happens (see [`FrameReader`]), so an adversarial length
//! prefix cannot balloon memory.

use filter_core::{ByteReader, ByteWriter, SerialError};
use std::borrow::Cow;
use std::io::{self, Read, Write};
use telemetry::trace::{SpanRecord, Trace, TraceContext};

/// Frame-payload magic: "BB" + F117 ("filter") + version-independent
/// tag byte.
pub const PROTO_MAGIC: u32 = 0xBBF1_17AA;
/// Current protocol version. Bump on any incompatible frame change;
/// servers reject other versions with [`ErrorCode::UnsupportedVersion`].
pub const PROTO_VERSION: u32 = 1;
/// Default upper bound on a frame payload (8 MiB ≈ one million keys
/// per batch); both sides refuse larger length prefixes outright.
pub const DEFAULT_MAX_FRAME: u32 = 8 * 1024 * 1024;
/// Frame-length-word flag bit: when set, the counted body begins with
/// a 17-byte [`TraceContext`] before the payload proper. Untraced
/// frames never set it, so they stay byte-identical to the pre-trace
/// wire format; the bit sits far above any sane `max_frame`, so an
/// old peer that doesn't mask it simply rejects the frame as
/// oversized instead of misparsing it.
pub const FLAG_TRACE: u32 = 1 << 31;
/// Longest accepted filter name in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// Which filter implementation backs a served instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Wait-free `bloom::AtomicBlockedBloomFilter` (insert/contains).
    AtomicBloom,
    /// `Sharded<cuckoo::CuckooFilter>` (insert/contains/delete).
    ShardedCuckoo,
    /// `Sharded<quotient::CountingQuotientFilter>`
    /// (insert/contains/count/delete).
    ShardedCqf,
    /// `Sharded<bloom::RegisterBlockedBloomFilter>` — the SIMD
    /// register-blocked backend (insert/contains).
    RegisterBloom,
    /// `compacting::CompactingFilter` — Bloom memtable front with
    /// background compaction into static fuse tiers
    /// (insert/contains).
    Compacting,
    /// `Sharded<bloom::TwoChoiceRegisterBloomFilter>` — the
    /// two-choice register-blocked backend (insert/contains).
    TwoChoiceBloom,
}

impl Backend {
    fn to_u32(self) -> u32 {
        match self {
            Backend::AtomicBloom => 0,
            Backend::ShardedCuckoo => 1,
            Backend::ShardedCqf => 2,
            Backend::RegisterBloom => 3,
            Backend::Compacting => 4,
            Backend::TwoChoiceBloom => 5,
        }
    }

    fn from_u32(v: u32) -> Result<Self, SerialError> {
        match v {
            0 => Ok(Backend::AtomicBloom),
            1 => Ok(Backend::ShardedCuckoo),
            2 => Ok(Backend::ShardedCqf),
            3 => Ok(Backend::RegisterBloom),
            4 => Ok(Backend::Compacting),
            5 => Ok(Backend::TwoChoiceBloom),
            _ => Err(SerialError::Corrupt("unknown backend")),
        }
    }

    /// Human-readable backend name (STATS output).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::AtomicBloom => "atomic-bloom",
            Backend::ShardedCuckoo => "sharded-cuckoo",
            Backend::ShardedCqf => "sharded-cqf",
            Backend::RegisterBloom => "register-bloom",
            Backend::Compacting => "compacting",
            Backend::TwoChoiceBloom => "two-choice-bloom",
        }
    }
}

/// Machine-readable error classes carried by error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload failed structural decoding.
    BadFrame,
    /// The header version is not [`PROTO_VERSION`].
    UnsupportedVersion,
    /// The header opcode is not a known request.
    UnknownOpcode,
    /// No filter registered under the given name.
    NoSuchFilter,
    /// CREATE of a name that is already registered.
    FilterExists,
    /// The filter's mutation path reported an error (capacity,
    /// eviction limit, not-found underflow...).
    Filter,
    /// The operation is not supported by this backend (e.g. COUNT on
    /// a plain membership filter).
    Unsupported,
    /// The filter name is empty, too long, or not UTF-8.
    BadName,
}

impl ErrorCode {
    fn to_u32(self) -> u32 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::UnknownOpcode => 3,
            ErrorCode::NoSuchFilter => 4,
            ErrorCode::FilterExists => 5,
            ErrorCode::Filter => 6,
            ErrorCode::Unsupported => 7,
            ErrorCode::BadName => 8,
        }
    }

    fn from_u32(v: u32) -> Result<Self, SerialError> {
        Ok(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::NoSuchFilter,
            5 => ErrorCode::FilterExists,
            6 => ErrorCode::Filter,
            7 => ErrorCode::Unsupported,
            8 => ErrorCode::BadName,
            _ => return Err(SerialError::Corrupt("unknown error code")),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

// Request opcodes (low range).
const OP_CREATE: u32 = 1;
const OP_INSERT: u32 = 2;
const OP_CONTAINS: u32 = 3;
const OP_COUNT: u32 = 4;
const OP_DELETE: u32 = 5;
const OP_STATS: u32 = 6;
const OP_METRICS: u32 = 7;
const OP_SNAPSHOT: u32 = 8;
const OP_FORGET: u32 = 9;
const OP_MULTI_CONTAINS: u32 = 10;
const OP_TRACES: u32 = 11;

// Response opcodes (high range).
const OP_OK: u32 = 128;
const OP_BOOLS: u32 = 129;
const OP_COUNTS: u32 = 130;
const OP_STATS_REPORT: u32 = 131;
const OP_ERROR: u32 = 132;
const OP_TEXT: u32 = 133;
const OP_BLOB: u32 = 134;
const OP_NAME_LISTS: u32 = 135;
const OP_TRACES_REPORT: u32 = 136;

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a new named filter. With an empty `blob` the server
    /// builds from `(capacity, eps, shard_bits, seed)`; a non-empty
    /// blob ships a pre-built filter (`CuckooFilter::to_bytes` /
    /// `CountingQuotientFilter::to_bytes`) and the sizing parameters
    /// are ignored.
    Create {
        /// Registry key for the new instance.
        name: String,
        /// Implementation family.
        backend: Backend,
        /// Expected number of distinct keys.
        capacity: u64,
        /// Target false-positive rate.
        eps: f64,
        /// log2 of the shard count (ignored by the atomic Bloom
        /// backend, which is wait-free and unsharded).
        shard_bits: u32,
        /// Hash seed; the same seed rebuilds a bit-identical filter
        /// in-process (the parity-test oracle).
        seed: u64,
        /// Optional serialized pre-built filter.
        blob: Vec<u8>,
    },
    /// Insert a batch of keys.
    Insert {
        /// Target filter.
        name: String,
        /// Keys to insert.
        keys: Vec<u64>,
    },
    /// Batched membership query; answered by [`Response::Bools`].
    Contains {
        /// Target filter.
        name: String,
        /// Keys to probe.
        keys: Vec<u64>,
    },
    /// Batched multiplicity query; answered by [`Response::Counts`].
    Count {
        /// Target filter.
        name: String,
        /// Keys to count.
        keys: Vec<u64>,
    },
    /// Batched removal; answered by [`Response::Bools`] (whether each
    /// key matched a stored fingerprint).
    Delete {
        /// Target filter.
        name: String,
        /// Keys to remove.
        keys: Vec<u64>,
    },
    /// Server metrics and the filter inventory.
    Stats,
    /// Prometheus-text metric exposition (every registered telemetry
    /// family, server request counters, the filter inventory as
    /// labelled gauges, and the slow-request log); answered by
    /// [`Response::Text`].
    Metrics,
    /// Serialize a registered filter into a portable blob; answered
    /// by [`Response::Blob`]. Pairs with blob-CREATE on another node
    /// to ship a filter across the cluster (migration/replication).
    Snapshot {
        /// Filter to serialize.
        name: String,
    },
    /// Unregister a filter and drop its memory. The inverse of
    /// CREATE; used by the cluster client after a snapshot has been
    /// re-homed on its new owner.
    Forget {
        /// Filter to unregister.
        name: String,
    },
    /// "Which filters contain each of these keys?" — the multi-tenant
    /// query, answered across the whole registry through the Bloofi
    /// index in O(d·log N) summary probes per key instead of a flat
    /// scan; answered by [`Response::NameLists`].
    MultiContains {
        /// Keys to look up across every registered filter.
        keys: Vec<u64>,
    },
    /// Drain the server's completed-trace store; answered by
    /// [`Response::Traces`] (or [`Response::Text`] with Chrome
    /// `trace_event` JSON when `json` is set).
    Traces {
        /// Answer as Chrome trace JSON text instead of binary spans.
        json: bool,
    },
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded with nothing to return.
    Ok,
    /// Per-key boolean answers, aligned with the request's keys.
    Bools(Vec<bool>),
    /// Per-key multiplicity answers, aligned with the request's keys.
    Counts(Vec<u64>),
    /// Metrics snapshot plus filter inventory.
    Stats(crate::metrics::StatsReport),
    /// A UTF-8 text document (the METRICS exposition).
    Text(String),
    /// A serialized filter (the SNAPSHOT answer): the backend tag the
    /// blob rebuilds into, and the bytes blob-CREATE accepts.
    Blob {
        /// Backend family the blob encodes.
        backend: Backend,
        /// Serialized filter (single `to_bytes` image or the
        /// multi-shard envelope for sharded backends).
        bytes: Vec<u8>,
    },
    /// The request failed.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Per-key lists of matching filter names, aligned with the
    /// request's keys (the MULTI_CONTAINS answer); each list is
    /// sorted and duplicate-free.
    NameLists(Vec<Vec<String>>),
    /// Completed traces drained from the server's store (the TRACES
    /// answer).
    Traces(Vec<Trace>),
}

fn put_header(w: &mut ByteWriter, opcode: u32) {
    w.put_u32(PROTO_MAGIC);
    w.put_u32(PROTO_VERSION);
    w.put_u32(opcode);
}

/// Strip and validate the 12-byte header, returning the opcode.
fn take_header(r: &mut ByteReader<'_>) -> Result<u32, HeaderError> {
    if r.take_u32().map_err(HeaderError::Serial)? != PROTO_MAGIC {
        return Err(HeaderError::Serial(SerialError::Corrupt("frame magic")));
    }
    let version = r.take_u32().map_err(HeaderError::Serial)?;
    if version != PROTO_VERSION {
        return Err(HeaderError::Version(version));
    }
    r.take_u32().map_err(HeaderError::Serial)
}

/// Why a frame header was rejected. Version mismatches are split from
/// structural corruption so the server can answer with the precise
/// error code.
#[derive(Debug)]
pub enum HeaderError {
    /// Magic or field decoding failed.
    Serial(SerialError),
    /// Well-formed header for a version this peer does not speak.
    Version(u32),
}

fn put_name(w: &mut ByteWriter, name: &str) {
    w.put_bytes(name.as_bytes());
}

fn take_name(r: &mut ByteReader<'_>) -> Result<String, SerialError> {
    let bytes = r.take_bytes()?;
    if bytes.is_empty() || bytes.len() > MAX_NAME_LEN {
        return Err(SerialError::Corrupt("filter name length"));
    }
    String::from_utf8(bytes).map_err(|_| SerialError::Corrupt("filter name not utf-8"))
}

/// Bit-pack bools 64 per word (little-endian bit order).
fn put_bools(w: &mut ByteWriter, bools: &[bool]) {
    w.put_u64(bools.len() as u64);
    let mut word = 0u64;
    for (i, &b) in bools.iter().enumerate() {
        if b {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            w.put_u64(word);
            word = 0;
        }
    }
    if !bools.len().is_multiple_of(64) {
        w.put_u64(word);
    }
}

fn take_bools(r: &mut ByteReader<'_>) -> Result<Vec<bool>, SerialError> {
    let n = r.take_u64()? as usize;
    let words = n.div_ceil(64);
    if words * 8 > r.remaining() {
        return Err(SerialError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for wi in 0..words {
        let word = r.take_u64()?;
        let bits = (n - wi * 64).min(64);
        for b in 0..bits {
            out.push(word >> b & 1 == 1);
        }
    }
    Ok(out)
}

impl Request {
    /// Encode into a frame payload (header + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Create {
                name,
                backend,
                capacity,
                eps,
                shard_bits,
                seed,
                blob,
            } => {
                put_header(&mut w, OP_CREATE);
                put_name(&mut w, name);
                w.put_u32(backend.to_u32());
                w.put_u64(*capacity);
                w.put_f64(*eps);
                w.put_u32(*shard_bits);
                w.put_u64(*seed);
                w.put_bytes(blob);
            }
            Request::Insert { name, keys } => {
                put_header(&mut w, OP_INSERT);
                put_name(&mut w, name);
                w.put_u64_slice(keys);
            }
            Request::Contains { name, keys } => {
                put_header(&mut w, OP_CONTAINS);
                put_name(&mut w, name);
                w.put_u64_slice(keys);
            }
            Request::Count { name, keys } => {
                put_header(&mut w, OP_COUNT);
                put_name(&mut w, name);
                w.put_u64_slice(keys);
            }
            Request::Delete { name, keys } => {
                put_header(&mut w, OP_DELETE);
                put_name(&mut w, name);
                w.put_u64_slice(keys);
            }
            Request::Stats => put_header(&mut w, OP_STATS),
            Request::Metrics => put_header(&mut w, OP_METRICS),
            Request::Snapshot { name } => {
                put_header(&mut w, OP_SNAPSHOT);
                put_name(&mut w, name);
            }
            Request::Forget { name } => {
                put_header(&mut w, OP_FORGET);
                put_name(&mut w, name);
            }
            Request::MultiContains { keys } => {
                put_header(&mut w, OP_MULTI_CONTAINS);
                w.put_u64_slice(keys);
            }
            Request::Traces { json } => {
                put_header(&mut w, OP_TRACES);
                w.put_u32(u32::from(*json));
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload. Distinguishes version mismatch from
    /// structural corruption (the server answers each with its own
    /// error code); an unknown opcode is reported as the inner `Err`
    /// carrying the offending opcode.
    pub fn decode(payload: &[u8]) -> Result<Result<Request, u32>, HeaderError> {
        let mut r = ByteReader::new(payload);
        let opcode = take_header(&mut r)?;
        let req = (|| -> Result<Result<Request, u32>, SerialError> {
            Ok(Ok(match opcode {
                OP_CREATE => Request::Create {
                    name: take_name(&mut r)?,
                    backend: Backend::from_u32(r.take_u32()?)?,
                    capacity: r.take_u64()?,
                    eps: r.take_f64()?,
                    shard_bits: r.take_u32()?,
                    seed: r.take_u64()?,
                    blob: r.take_bytes()?,
                },
                OP_INSERT => Request::Insert {
                    name: take_name(&mut r)?,
                    keys: r.take_u64_vec()?,
                },
                OP_CONTAINS => Request::Contains {
                    name: take_name(&mut r)?,
                    keys: r.take_u64_vec()?,
                },
                OP_COUNT => Request::Count {
                    name: take_name(&mut r)?,
                    keys: r.take_u64_vec()?,
                },
                OP_DELETE => Request::Delete {
                    name: take_name(&mut r)?,
                    keys: r.take_u64_vec()?,
                },
                OP_STATS => Request::Stats,
                OP_METRICS => Request::Metrics,
                OP_SNAPSHOT => Request::Snapshot {
                    name: take_name(&mut r)?,
                },
                OP_FORGET => Request::Forget {
                    name: take_name(&mut r)?,
                },
                OP_MULTI_CONTAINS => Request::MultiContains {
                    keys: r.take_u64_vec()?,
                },
                OP_TRACES => Request::Traces {
                    json: r.take_u32()? != 0,
                },
                other => return Ok(Err(other)),
            }))
        })()
        .map_err(HeaderError::Serial)?;
        if let Ok(ref _req) = req {
            if r.remaining() != 0 {
                return Err(HeaderError::Serial(SerialError::Corrupt(
                    "trailing bytes after request",
                )));
            }
        }
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload (header + body, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Ok => put_header(&mut w, OP_OK),
            Response::Bools(bools) => {
                put_header(&mut w, OP_BOOLS);
                put_bools(&mut w, bools);
            }
            Response::Counts(counts) => {
                put_header(&mut w, OP_COUNTS);
                w.put_u64_slice(counts);
            }
            Response::Stats(report) => {
                put_header(&mut w, OP_STATS_REPORT);
                report.serialize(&mut w);
            }
            Response::Error { code, message } => {
                put_header(&mut w, OP_ERROR);
                w.put_u32(code.to_u32());
                w.put_bytes(message.as_bytes());
            }
            Response::Text(text) => {
                put_header(&mut w, OP_TEXT);
                w.put_bytes(text.as_bytes());
            }
            Response::Blob { backend, bytes } => {
                put_header(&mut w, OP_BLOB);
                w.put_u32(backend.to_u32());
                w.put_bytes(bytes);
            }
            Response::NameLists(lists) => {
                put_header(&mut w, OP_NAME_LISTS);
                w.put_u64(lists.len() as u64);
                for names in lists {
                    w.put_u32(names.len() as u32);
                    for name in names {
                        put_name(&mut w, name);
                    }
                }
            }
            Response::Traces(traces) => {
                put_header(&mut w, OP_TRACES_REPORT);
                w.put_u64(traces.len() as u64);
                for t in traces {
                    w.put_u64(t.trace_id);
                    w.put_u32(t.spans.len() as u32);
                    for s in &t.spans {
                        put_span(&mut w, s);
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, SerialError> {
        let mut r = ByteReader::new(payload);
        let opcode = match take_header(&mut r) {
            Ok(op) => op,
            Err(HeaderError::Serial(e)) => return Err(e),
            Err(HeaderError::Version(_)) => return Err(SerialError::Corrupt("frame version")),
        };
        Ok(match opcode {
            OP_OK => Response::Ok,
            OP_BOOLS => Response::Bools(take_bools(&mut r)?),
            OP_COUNTS => Response::Counts(r.take_u64_vec()?),
            OP_STATS_REPORT => Response::Stats(crate::metrics::StatsReport::deserialize(&mut r)?),
            OP_ERROR => Response::Error {
                code: ErrorCode::from_u32(r.take_u32()?)?,
                message: String::from_utf8(r.take_bytes()?)
                    .map_err(|_| SerialError::Corrupt("error message not utf-8"))?,
            },
            OP_TEXT => Response::Text(
                String::from_utf8(r.take_bytes()?)
                    .map_err(|_| SerialError::Corrupt("text body not utf-8"))?,
            ),
            OP_BLOB => Response::Blob {
                backend: Backend::from_u32(r.take_u32()?)?,
                bytes: r.take_bytes()?,
            },
            OP_NAME_LISTS => {
                let n = r.take_u64()? as usize;
                // Every key costs at least the u32 list length on the
                // wire, so an honest count can't exceed the bytes left.
                if n > r.remaining() / 4 {
                    return Err(SerialError::Truncated);
                }
                let mut lists = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = r.take_u32()? as usize;
                    // Each name costs at least its u32 length prefix.
                    if m > r.remaining() / 4 {
                        return Err(SerialError::Truncated);
                    }
                    let mut names = Vec::with_capacity(m);
                    for _ in 0..m {
                        names.push(take_name(&mut r)?);
                    }
                    lists.push(names);
                }
                Response::NameLists(lists)
            }
            OP_TRACES_REPORT => {
                let n = r.take_u64()? as usize;
                // Each trace costs at least its u64 id + u32 count.
                if n > r.remaining() / 12 {
                    return Err(SerialError::Truncated);
                }
                let mut traces = Vec::with_capacity(n);
                for _ in 0..n {
                    let trace_id = r.take_u64()?;
                    let m = r.take_u32()? as usize;
                    // Each span costs at least its fixed fields.
                    if m > r.remaining() / SPAN_WIRE_MIN {
                        return Err(SerialError::Truncated);
                    }
                    let mut spans = Vec::with_capacity(m);
                    for _ in 0..m {
                        spans.push(take_span(&mut r)?);
                    }
                    traces.push(Trace { trace_id, spans });
                }
                Response::Traces(traces)
            }
            _ => return Err(SerialError::Corrupt("unknown response opcode")),
        })
    }
}

/// Minimum wire cost of one span: nine u64 fields, one u32 pid, and
/// the name's u32 length prefix.
const SPAN_WIRE_MIN: usize = 9 * 8 + 4 + 4;

fn put_span(w: &mut ByteWriter, s: &SpanRecord) {
    w.put_u64(s.trace_id);
    w.put_u64(s.span_id);
    w.put_u64(s.parent_id);
    w.put_u64(s.link_id);
    w.put_bytes(s.name.as_bytes());
    w.put_u64(s.start_us);
    w.put_u64(s.dur_us);
    w.put_u32(s.pid);
    w.put_u64(s.tid);
    w.put_u64(s.a);
    w.put_u64(s.b);
}

fn take_span(r: &mut ByteReader<'_>) -> Result<SpanRecord, SerialError> {
    let trace_id = r.take_u64()?;
    let span_id = r.take_u64()?;
    let parent_id = r.take_u64()?;
    let link_id = r.take_u64()?;
    let name = String::from_utf8(r.take_bytes()?)
        .map_err(|_| SerialError::Corrupt("span name not utf-8"))?;
    Ok(SpanRecord {
        trace_id,
        span_id,
        parent_id,
        link_id,
        name: Cow::Owned(name),
        start_us: r.take_u64()?,
        dur_us: r.take_u64()?,
        pid: r.take_u32()?,
        tid: r.take_u64()?,
        a: r.take_u64()?,
        b: r.take_u64()?,
    })
}

/// Write one frame: `u32` LE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Write one frame, optionally carrying a trace context. With
/// `ctx: None` the bytes produced are identical to [`write_frame`] —
/// an untraced request adds zero wire bytes. With `Some`, the length
/// word gets [`FLAG_TRACE`] and the counted body is the 17-byte
/// context followed by the payload.
pub fn write_frame_traced(
    w: &mut impl Write,
    payload: &[u8],
    ctx: Option<&TraceContext>,
) -> io::Result<()> {
    match ctx {
        None => write_frame(w, payload),
        Some(c) => {
            let len = (TraceContext::WIRE_LEN + payload.len()) as u32 | FLAG_TRACE;
            w.write_all(&len.to_le_bytes())?;
            w.write_all(&c.encode())?;
            w.write_all(payload)?;
            w.flush()
        }
    }
}

/// A frame arrived, or the peer closed cleanly between frames.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete payload, plus the trace context the frame carried
    /// (already stripped from the payload), if any.
    Frame(Vec<u8>, Option<TraceContext>),
    /// EOF on a frame boundary: an orderly close.
    Closed,
}

/// Why [`FrameReader::read_frame`] failed.
#[derive(Debug)]
pub enum FrameError {
    /// The read timed out mid-wait; partial progress is retained and
    /// the call can simply be retried (the server uses this tick to
    /// poll its shutdown flag).
    Timeout,
    /// The length prefix exceeds the configured maximum. Nothing
    /// beyond the prefix was read or allocated.
    Oversized(u32),
    /// EOF in the middle of a frame: the peer disconnected mid-write.
    Disconnected,
    /// Any other transport error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Timeout => write!(f, "read timed out"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds limit"),
            FrameError::Disconnected => write!(f, "peer disconnected mid-frame"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

enum ReadState {
    Head,
    Body,
}

/// Incremental frame reader that survives read timeouts.
///
/// Progress is buffered across calls: a timeout mid-length-prefix or
/// mid-body returns [`FrameError::Timeout`] without losing the bytes
/// already consumed, so a server can use short read timeouts as a
/// shutdown-polling tick without corrupting the stream position.
pub struct FrameReader<R> {
    inner: R,
    max_frame: u32,
    state: ReadState,
    head: [u8; 4],
    got: usize,
    body: Vec<u8>,
    traced: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream; frames larger than `max_frame` are refused
    /// before their body is read.
    pub fn new(inner: R, max_frame: u32) -> Self {
        FrameReader {
            inner,
            max_frame,
            state: ReadState::Head,
            head: [0; 4],
            got: 0,
            body: Vec::new(),
            traced: false,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Read until one full frame, clean EOF, timeout, or error.
    pub fn read_frame(&mut self) -> Result<FrameEvent, FrameError> {
        loop {
            match self.state {
                ReadState::Head => {
                    while self.got < 4 {
                        match self.inner.read(&mut self.head[self.got..]) {
                            Ok(0) if self.got == 0 => return Ok(FrameEvent::Closed),
                            Ok(0) => return Err(FrameError::Disconnected),
                            Ok(n) => self.got += n,
                            Err(e) => return Err(classify(e)),
                        }
                    }
                    let word = u32::from_le_bytes(self.head);
                    self.traced = word & FLAG_TRACE != 0;
                    let len = word & !FLAG_TRACE;
                    if len > self.max_frame {
                        // Reset so the caller could in principle keep
                        // going, though the server closes here: the
                        // unread body makes resync impossible.
                        self.got = 0;
                        return Err(FrameError::Oversized(len));
                    }
                    if self.traced && (len as usize) < TraceContext::WIRE_LEN {
                        self.got = 0;
                        return Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "traced frame shorter than its trace context",
                        )));
                    }
                    self.body = vec![0; len as usize];
                    self.got = 0;
                    self.state = ReadState::Body;
                }
                ReadState::Body => {
                    while self.got < self.body.len() {
                        match self.inner.read(&mut self.body[self.got..]) {
                            Ok(0) => return Err(FrameError::Disconnected),
                            Ok(n) => self.got += n,
                            Err(e) => return Err(classify(e)),
                        }
                    }
                    self.state = ReadState::Head;
                    self.got = 0;
                    let mut body = std::mem::take(&mut self.body);
                    let ctx = if self.traced {
                        let c = TraceContext::decode(&body);
                        body.drain(..TraceContext::WIRE_LEN);
                        c
                    } else {
                        None
                    };
                    return Ok(FrameEvent::Frame(body, ctx));
                }
            }
        }
    }
}

fn classify(e: io::Error) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::Timeout,
        io::ErrorKind::UnexpectedEof => FrameError::Disconnected,
        _ => FrameError::Io(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Create {
            name: "urls".into(),
            backend: Backend::ShardedCqf,
            capacity: 1_000_000,
            eps: 1.0 / 256.0,
            shard_bits: 4,
            seed: 0xfeed,
            blob: vec![1, 2, 3],
        });
        roundtrip_request(Request::Insert {
            name: "f".into(),
            keys: vec![1, 2, 3],
        });
        roundtrip_request(Request::Contains {
            name: "f".into(),
            keys: (0..1000).collect(),
        });
        roundtrip_request(Request::Count {
            name: "f".into(),
            keys: vec![],
        });
        roundtrip_request(Request::Delete {
            name: "f".into(),
            keys: vec![u64::MAX],
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Snapshot { name: "f".into() });
        roundtrip_request(Request::Forget { name: "f".into() });
        roundtrip_request(Request::MultiContains {
            keys: vec![0, 42, u64::MAX],
        });
        roundtrip_request(Request::MultiContains { keys: vec![] });
        roundtrip_request(Request::Traces { json: false });
        roundtrip_request(Request::Traces { json: true });
    }

    #[test]
    fn response_roundtrips() {
        for n in [0usize, 1, 63, 64, 65, 300] {
            let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let bytes = Response::Bools(bools.clone()).encode();
            assert_eq!(Response::decode(&bytes).unwrap(), Response::Bools(bools));
        }
        let resp = Response::Counts(vec![0, 1, u64::MAX]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let resp = Response::Error {
            code: ErrorCode::NoSuchFilter,
            message: "no filter named 'x'".into(),
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        assert_eq!(
            Response::decode(&Response::Ok.encode()).unwrap(),
            Response::Ok
        );
        let resp = Response::Text("# HELP x y\n# TYPE x counter\nx 1\n".into());
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let resp = Response::Blob {
            backend: Backend::Compacting,
            bytes: vec![0xde, 0xad, 0xbe, 0xef],
        };
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let resp = Response::NameLists(vec![
            vec!["a".into(), "bb".into()],
            vec![],
            vec!["zz".into()],
        ]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let resp = Response::NameLists(vec![]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        // A truncated name-lists body is rejected, not panicking —
        // including an honest-looking but oversized key count.
        let good = Response::NameLists(vec![vec!["abc".into()]; 3]).encode();
        for cut in 12..good.len() {
            assert!(Response::decode(&good[..cut]).is_err());
        }
        let mut bad = good.clone();
        bad[12] = 0xff;
        assert!(Response::decode(&bad).is_err());
        // Non-UTF-8 text bodies are rejected, not lossily decoded.
        let mut bad = Response::Text("abc".into()).encode();
        let n = bad.len();
        bad[n - 1] = 0xff;
        assert!(Response::decode(&bad).is_err());
    }

    #[test]
    fn malformed_payloads_rejected_not_panicking() {
        let good = Request::Contains {
            name: "f".into(),
            keys: vec![1, 2, 3],
        }
        .encode();
        for cut in 0..good.len() {
            assert!(matches!(
                Request::decode(&good[..cut]),
                Err(HeaderError::Serial(_)) | Ok(Err(_))
            ));
        }
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(Request::decode(&bad), Err(HeaderError::Serial(_))));
        // Future version.
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            Request::decode(&bad),
            Err(HeaderError::Version(9))
        ));
        // Unknown opcode is reported, not conflated with corruption.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(Request::decode(&bad), Ok(Err(99))));
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(matches!(Request::decode(&bad), Err(HeaderError::Serial(_))));
    }

    #[test]
    fn name_limits_enforced() {
        let long = "x".repeat(MAX_NAME_LEN + 1);
        let bytes = Request::Insert {
            name: long,
            keys: vec![],
        }
        .encode();
        assert!(matches!(
            Request::decode(&bytes),
            Err(HeaderError::Serial(_))
        ));
        let empty = Request::Insert {
            name: String::new(),
            keys: vec![],
        }
        .encode();
        assert!(matches!(
            Request::decode(&empty),
            Err(HeaderError::Serial(_))
        ));
    }

    #[test]
    fn frame_reader_reassembles_split_writes() {
        // Feed a frame one byte at a time through a reader that
        // returns each byte in its own read() call.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let payload = Request::Stats.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &payload).unwrap();
        let mut fr = FrameReader::new(OneByte(wire, 0), DEFAULT_MAX_FRAME);
        for _ in 0..2 {
            match fr.read_frame().unwrap() {
                FrameEvent::Frame(p, ctx) => {
                    assert_eq!(p, payload);
                    assert_eq!(ctx, None);
                }
                FrameEvent::Closed => panic!("premature close"),
            }
        }
        assert!(matches!(fr.read_frame().unwrap(), FrameEvent::Closed));
    }

    #[test]
    fn untraced_frames_add_zero_wire_bytes() {
        // write_frame_traced(.., None) must be byte-identical to the
        // pre-trace wire format: tracing costs nothing unless a
        // context is attached.
        let payload = Request::Contains {
            name: "f".into(),
            keys: vec![1, 2, 3],
        }
        .encode();
        let mut plain = Vec::new();
        write_frame(&mut plain, &payload).unwrap();
        let mut traced_none = Vec::new();
        write_frame_traced(&mut traced_none, &payload, None).unwrap();
        assert_eq!(plain, traced_none);
    }

    #[test]
    fn trace_context_rides_the_frame_and_is_stripped() {
        let payload = Request::Stats.encode();
        let ctx = TraceContext {
            trace_id: 0xdead_beef_0bad_cafe,
            span_id: 0x1234_5678_9abc_def0,
            flags: telemetry::trace::FLAG_FORCED,
        };
        let mut wire = Vec::new();
        write_frame_traced(&mut wire, &payload, Some(&ctx)).unwrap();
        // The traced frame is exactly 17 bytes longer than the plain
        // one and has the flag bit set in its length word.
        let mut plain = Vec::new();
        write_frame(&mut plain, &payload).unwrap();
        assert_eq!(wire.len(), plain.len() + TraceContext::WIRE_LEN);
        let word = u32::from_le_bytes(wire[..4].try_into().unwrap());
        assert_ne!(word & FLAG_TRACE, 0);
        // An interleaved untraced frame on the same stream still
        // parses: the flag is per-frame.
        write_frame(&mut wire, &payload).unwrap();
        let mut fr = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME);
        match fr.read_frame().unwrap() {
            FrameEvent::Frame(p, got) => {
                assert_eq!(p, payload);
                assert_eq!(got, Some(ctx));
            }
            FrameEvent::Closed => panic!("premature close"),
        }
        match fr.read_frame().unwrap() {
            FrameEvent::Frame(p, got) => {
                assert_eq!(p, payload);
                assert_eq!(got, None);
            }
            FrameEvent::Closed => panic!("premature close"),
        }
        assert!(matches!(fr.read_frame().unwrap(), FrameEvent::Closed));
    }

    #[test]
    fn traced_frame_shorter_than_context_is_rejected() {
        // Flag bit set but only 5 body bytes: structurally invalid.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(5u32 | FLAG_TRACE).to_le_bytes());
        wire.extend_from_slice(&[0u8; 5]);
        let mut fr = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME);
        assert!(matches!(fr.read_frame(), Err(FrameError::Io(_))));
    }

    #[test]
    fn traces_response_roundtrips_and_rejects_truncation() {
        let span = |i: u64| SpanRecord {
            trace_id: 7,
            span_id: i,
            parent_id: i.saturating_sub(1),
            link_id: if i == 3 { 99 } else { 0 },
            name: format!("span-{i}").into(),
            start_us: 1_000_000 + i,
            dur_us: 10 * i,
            pid: 4242,
            tid: i,
            a: i * 2,
            b: i * 3,
        };
        let resp = Response::Traces(vec![
            Trace {
                trace_id: 7,
                spans: vec![span(1), span(2), span(3)],
            },
            Trace {
                trace_id: 8,
                spans: vec![],
            },
        ]);
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
        let empty = Response::Traces(vec![]);
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
        // Truncations are rejected, never panicking.
        for cut in 12..bytes.len() {
            assert!(Response::decode(&bytes[..cut]).is_err());
        }
        // A lying span count (u32 after the 12-byte header, the u64
        // trace count, and the first trace id) trips the bounds check.
        let mut bad = bytes.clone();
        bad[28] = 0xff;
        assert!(Response::decode(&bad).is_err());
    }

    #[test]
    fn frame_reader_rejects_oversized_prefix_without_allocating() {
        // An all-ones length word reads as trace flag + 2^31-1 body
        // bytes; the reported length is the masked size.
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut fr = FrameReader::new(&wire[..], 1024);
        assert!(matches!(
            fr.read_frame(),
            Err(FrameError::Oversized(n)) if n == !FLAG_TRACE
        ));
        // An untraced oversized prefix reports its length verbatim.
        let mut wire = Vec::new();
        wire.extend_from_slice(&2048u32.to_le_bytes());
        let mut fr = FrameReader::new(&wire[..], 1024);
        assert!(matches!(fr.read_frame(), Err(FrameError::Oversized(2048))));
    }

    #[test]
    fn frame_reader_flags_mid_frame_disconnect() {
        let payload = Request::Stats.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        wire.truncate(wire.len() - 3); // peer died mid-frame
        let mut fr = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME);
        assert!(matches!(fr.read_frame(), Err(FrameError::Disconnected)));
    }
}
