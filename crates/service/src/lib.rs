//! # service
//!
//! A production-shaped network layer over the workspace's filters: the
//! tutorial's feature-rich filters (concurrent Bloom, deletable
//! cuckoo, counting quotient) served as named instances behind a
//! versioned binary wire protocol — the deployment shape in which
//! systems like caches, routers, and storage engines actually consume
//! a filter when it cannot live in the querying process.
//!
//! Three design constraints shape everything here:
//!
//! 1. **Offline-buildable.** The container has no crates.io access, so
//!    the stack is `std::net` + threads: no async runtime, no serde,
//!    no prometheus client. Serialization reuses
//!    `filter_core::serial`, and observability is the in-tree
//!    `telemetry` crate (atomic counters + fixed-bucket latency
//!    histograms) exposed two ways: a compact binary STATS frame and
//!    a Prometheus-text METRICS frame carrying every registered
//!    family, the filter inventory, and the slow-request log.
//! 2. **Batching as the unit of amortisation.** A frame carries a
//!    whole batch of keys; the server answers a batch CONTAINS with
//!    one registry lookup and one shard-grouped filter call
//!    (`Sharded::contains_batch`), and membership answers return
//!    bit-packed. Per-key network cost is what the batch-size sweep in
//!    experiment E19 measures.
//! 3. **Hostile-input hygiene.** Frame lengths are bounded before
//!    allocation, payloads decode through checked [`SerialError`]
//!    paths, and a peer that disconnects mid-frame or ships an absurd
//!    length prefix costs the server one counter increment and a
//!    closed socket — never a panic, a wedge, or an over-read.
//!
//! [`SerialError`]: filter_core::SerialError
//!
//! Module map: [`proto`] (framing + request/response codec),
//! [`engine`] (registry + dispatch core shared by both transports),
//! [`server`] (threaded transport: worker pool, graceful shutdown),
//! [`evented`] (readiness-loop transport: epoll, pipelining),
//! [`cluster`] (consistent-hash routing + snapshot migration),
//! [`client`] (blocking request/response client), [`metrics`]
//! (counters, histograms, STATS report).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod engine;
pub mod evented;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{ClientError, FilterClient};
pub use cluster::{ClusterClient, ClusterError, HashRing, MigrationReport};
pub use evented::EventedFilterServer;
pub use metrics::{
    CountersSnapshot, FilterRow, HistogramSnapshot, LatencyHistogram, ServerMetrics, StatsReport,
};
pub use proto::{Backend, ErrorCode, Request, Response, DEFAULT_MAX_FRAME, PROTO_VERSION};
pub use server::{
    build_atomic_bloom, build_compacting, build_sharded_cqf, build_sharded_cuckoo,
    build_sharded_register_bloom, build_sharded_two_choice, cuckoo_fp_bits, register_metrics,
    FilterServer, ServedFilter, ServerConfig,
};
