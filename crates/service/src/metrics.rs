//! In-tree observability: atomic counters and fixed-bucket latency
//! histograms, exposed over the STATS frame.
//!
//! The container builds offline, so there is no prometheus client to
//! lean on; this module is the minimal subset a filter service needs
//! to be operable — monotonic `Relaxed` counters (each is an
//! independent statistic; cross-counter snapshots tolerate the same
//! benign racing as `Sharded::len`) and a 40-bucket power-of-two
//! latency histogram whose `record` is one `fetch_add` on the bucket
//! selected by a leading-zero count. Quantiles are reconstructed from
//! bucket boundaries, so a reported p99 is an upper bound within one
//! power of two — the honest resolution for a histogram this cheap.

use filter_core::{ByteReader, ByteWriter, SerialError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` counts samples with
/// `ns < 2^(i+1)` (and `>= 2^i` for `i > 0`); the last bucket absorbs
/// everything ≥ ~9.2 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram with wait-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Fresh all-zero histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample (one `fetch_add`).
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn bucket_of(ns: u64) -> usize {
        // Index of the highest set bit, clamped to the bucket range;
        // 0 and 1 ns share bucket 0.
        (63 - ns.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Racing snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An owned copy of a histogram's bucket counts, serializable for the
/// STATS frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Upper-bound estimate of the `q`-quantile in nanoseconds
    /// (`q` in `[0, 1]`): the upper edge of the bucket holding the
    /// `q`-th sample. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }

    /// Merge another snapshot into this one (bucketwise sum) — used by
    /// the load generator to combine per-thread client histograms.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Serialize (length-prefixed bucket counts).
    pub fn serialize(&self, w: &mut ByteWriter) {
        w.put_u64_slice(&self.counts);
    }

    /// Deserialize.
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, SerialError> {
        let counts = r.take_u64_vec()?;
        if counts.len() > HISTOGRAM_BUCKETS {
            return Err(SerialError::Corrupt("histogram bucket count"));
        }
        Ok(HistogramSnapshot { counts })
    }
}

/// The server-side counter set. All counters are monotone and
/// `Relaxed`; a snapshot is a consistent-enough racing read.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections_opened: AtomicU64,
    /// Connections fully torn down.
    pub connections_closed: AtomicU64,
    /// Complete frames received (well-formed or not).
    pub frames_received: AtomicU64,
    /// Response frames written.
    pub responses_sent: AtomicU64,
    /// Malformed payloads, bad versions, unknown opcodes, and
    /// oversized length prefixes.
    pub protocol_errors: AtomicU64,
    /// Peers that vanished in the middle of a frame.
    pub disconnects_mid_frame: AtomicU64,
    /// Requests answered with an error response (includes protocol
    /// errors that could still be answered).
    pub error_responses: AtomicU64,
    /// Keys processed across INSERT/CONTAINS/COUNT/DELETE batches.
    pub keys_processed: AtomicU64,
    /// Keys that arrived in multi-key INSERT/CONTAINS requests and so
    /// were served by the batched probe kernels rather than the scalar
    /// path — `batched_ops / keys_processed` is the fraction of
    /// traffic amortizing hash-hoisted, prefetched lookups.
    pub batched_ops: AtomicU64,
    /// Payload bytes read.
    pub bytes_in: AtomicU64,
    /// Payload bytes written.
    pub bytes_out: AtomicU64,
    /// Server-side request service time (decode → response written).
    pub request_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one to a counter.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot every counter plus the latency histogram.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            disconnects_mid_frame: self.disconnects_mid_frame.load(Ordering::Relaxed),
            error_responses: self.error_responses.load(Ordering::Relaxed),
            keys_processed: self.keys_processed.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            request_latency: self.request_latency.snapshot(),
        }
    }
}

/// An owned, serializable copy of [`ServerMetrics`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CountersSnapshot {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections fully torn down.
    pub connections_closed: u64,
    /// Complete frames received.
    pub frames_received: u64,
    /// Response frames written.
    pub responses_sent: u64,
    /// Protocol-level failures (malformed, oversized, bad version).
    pub protocol_errors: u64,
    /// Peers that vanished mid-frame.
    pub disconnects_mid_frame: u64,
    /// Error responses sent.
    pub error_responses: u64,
    /// Keys processed across all batch operations.
    pub keys_processed: u64,
    /// Keys served through the batched probe kernels (multi-key
    /// INSERT/CONTAINS requests).
    pub batched_ops: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Server-side service-time histogram.
    pub request_latency: HistogramSnapshot,
}

impl CountersSnapshot {
    fn serialize(&self, w: &mut ByteWriter) {
        for v in [
            self.connections_opened,
            self.connections_closed,
            self.frames_received,
            self.responses_sent,
            self.protocol_errors,
            self.disconnects_mid_frame,
            self.error_responses,
            self.keys_processed,
            self.batched_ops,
            self.bytes_in,
            self.bytes_out,
        ] {
            w.put_u64(v);
        }
        self.request_latency.serialize(w);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, SerialError> {
        Ok(CountersSnapshot {
            connections_opened: r.take_u64()?,
            connections_closed: r.take_u64()?,
            frames_received: r.take_u64()?,
            responses_sent: r.take_u64()?,
            protocol_errors: r.take_u64()?,
            disconnects_mid_frame: r.take_u64()?,
            error_responses: r.take_u64()?,
            keys_processed: r.take_u64()?,
            batched_ops: r.take_u64()?,
            bytes_in: r.take_u64()?,
            bytes_out: r.take_u64()?,
            request_latency: HistogramSnapshot::deserialize(r)?,
        })
    }
}

/// One served filter's row in the STATS inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterRow {
    /// Registry name.
    pub name: String,
    /// Backend family.
    pub backend: crate::proto::Backend,
    /// Distinct keys represented (racing snapshot).
    pub len: u64,
    /// Heap bytes.
    pub size_in_bytes: u64,
}

/// The full STATS response body: counters plus filter inventory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Server-wide counters and latency.
    pub counters: CountersSnapshot,
    /// One row per registered filter, in name order.
    pub filters: Vec<FilterRow>,
}

impl StatsReport {
    /// Serialize into a STATS frame body.
    pub fn serialize(&self, w: &mut ByteWriter) {
        self.counters.serialize(w);
        w.put_u64(self.filters.len() as u64);
        for row in &self.filters {
            w.put_bytes(row.name.as_bytes());
            w.put_u32(match row.backend {
                crate::proto::Backend::AtomicBloom => 0,
                crate::proto::Backend::ShardedCuckoo => 1,
                crate::proto::Backend::ShardedCqf => 2,
                crate::proto::Backend::RegisterBloom => 3,
            });
            w.put_u64(row.len);
            w.put_u64(row.size_in_bytes);
        }
    }

    /// Deserialize from a STATS frame body.
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, SerialError> {
        let counters = CountersSnapshot::deserialize(r)?;
        let n = r.take_u64()? as usize;
        if n > 1 << 20 {
            return Err(SerialError::Corrupt("stats filter count"));
        }
        let mut filters = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = String::from_utf8(r.take_bytes()?)
                .map_err(|_| SerialError::Corrupt("stats name not utf-8"))?;
            let backend = match r.take_u32()? {
                0 => crate::proto::Backend::AtomicBloom,
                1 => crate::proto::Backend::ShardedCuckoo,
                2 => crate::proto::Backend::ShardedCqf,
                3 => crate::proto::Backend::RegisterBloom,
                _ => return Err(SerialError::Corrupt("stats backend")),
            };
            filters.push(FilterRow {
                name,
                backend,
                len: r.take_u64()?,
                size_in_bytes: r.take_u64()?,
            });
        }
        Ok(StatsReport { counters, filters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_selection() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let h = LatencyHistogram::new();
        // 90 samples at ~1us, 10 at ~1ms.
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_000));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_000_000));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.quantile_ns(0.50);
        let p99 = snap.quantile_ns(0.99);
        assert!((1_000..4_096).contains(&p50), "p50 {p50}");
        assert!((1_000_000..4_194_304).contains(&p99), "p99 {p99}");
        assert!(snap.quantile_ns(0.0) > 0);
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.99), 0);
    }

    #[test]
    fn merge_sums_buckets() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(50));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn stats_report_roundtrip() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        let report = StatsReport {
            counters: CountersSnapshot {
                connections_opened: 5,
                frames_received: 100,
                keys_processed: 4096,
                batched_ops: 4000,
                request_latency: h.snapshot(),
                ..Default::default()
            },
            filters: vec![FilterRow {
                name: "urls".into(),
                backend: crate::proto::Backend::AtomicBloom,
                len: 1_000,
                size_in_bytes: 2_048,
            }],
        };
        let mut w = ByteWriter::new();
        report.serialize(&mut w);
        let bytes = w.into_bytes();
        let back = StatsReport::deserialize(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, report);
        // Truncations error cleanly.
        for cut in 0..bytes.len() {
            assert!(StatsReport::deserialize(&mut ByteReader::new(&bytes[..cut])).is_err());
        }
    }
}
