//! In-tree observability: the server's counter set and latency
//! histogram, exposed over the STATS frame.
//!
//! The container builds offline, so there is no prometheus client to
//! lean on; the value types now live in the `telemetry` crate and are
//! shared with the filter-layer instrumentation — monotonic `Relaxed`
//! counters (each is an independent statistic; cross-counter
//! snapshots tolerate the same benign racing as `Sharded::len`) and a
//! fixed-bucket power-of-two latency histogram with an explicit
//! bucket for exactly-zero samples (a sub-resolution duration must
//! not alias the 1 ns bucket). Quantiles are reconstructed from
//! bucket boundaries, so a reported p99 is an upper bound within one
//! power of two — the honest resolution for a histogram this cheap.
//!
//! The same counters also feed the Prometheus-text METRICS exposition
//! (see `server::render_metrics`); STATS remains the compact binary
//! path for programmatic clients.

use filter_core::{ByteReader, ByteWriter, SerialError};

pub use telemetry::{Counter, Gauge, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// The latency histogram type (shared with the telemetry layer).
pub type LatencyHistogram = telemetry::Histogram;

/// Serialize a histogram snapshot for the STATS frame
/// (length-prefixed bucket counts, then the running sum).
pub fn serialize_histogram(snap: &HistogramSnapshot, w: &mut ByteWriter) {
    w.put_u64_slice(snap.counts());
    w.put_u64(snap.sum());
}

/// Deserialize a histogram snapshot from a STATS frame.
pub fn deserialize_histogram(r: &mut ByteReader<'_>) -> Result<HistogramSnapshot, SerialError> {
    let counts = r.take_u64_vec()?;
    if counts.len() > HISTOGRAM_BUCKETS {
        return Err(SerialError::Corrupt("histogram bucket count"));
    }
    let sum = r.take_u64()?;
    Ok(HistogramSnapshot::from_parts(counts, sum))
}

/// The server-side counter set. All counters are monotone and
/// `Relaxed`; a snapshot is a consistent-enough racing read. These are
/// *instance* values (not static registry handles) so every server in
/// a process gets its own set — the METRICS renderer folds them into
/// the exposition per server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections_opened: Counter,
    /// Connections fully torn down.
    pub connections_closed: Counter,
    /// Complete frames received (well-formed or not).
    pub frames_received: Counter,
    /// Response frames written.
    pub responses_sent: Counter,
    /// Malformed payloads, bad versions, unknown opcodes, and
    /// oversized length prefixes.
    pub protocol_errors: Counter,
    /// Peers that vanished in the middle of a frame.
    pub disconnects_mid_frame: Counter,
    /// Requests answered with an error response (includes protocol
    /// errors that could still be answered).
    pub error_responses: Counter,
    /// Keys processed across INSERT/CONTAINS/COUNT/DELETE batches.
    pub keys_processed: Counter,
    /// Keys that arrived in multi-key INSERT/CONTAINS requests and so
    /// were served by the batched probe kernels rather than the scalar
    /// path — `batched_ops / keys_processed` is the fraction of
    /// traffic amortizing hash-hoisted, prefetched lookups.
    pub batched_ops: Counter,
    /// Payload bytes read.
    pub bytes_in: Counter,
    /// Payload bytes written.
    pub bytes_out: Counter,
    /// Requests whose service time exceeded the server's slow-request
    /// threshold (each also lands in the slow-request log).
    pub slow_requests: Counter,
    /// `accept(2)` calls that returned a real error (not
    /// `WouldBlock`): fd exhaustion, aborted handshakes.
    pub accept_errors: Counter,
    /// Connections currently open (accepted and not yet torn down).
    pub open_connections: Gauge,
    /// High-watermark of complete frames dispatched from one
    /// connection in a single readiness drain — the observed
    /// pipelining depth. The threaded server reads one frame per
    /// blocking read loop, so its watermark is pinned at 1; the
    /// evented server reports how deep clients actually pipeline.
    pub pipelined_depth: Gauge,
    /// Server-side request service time (decode → response written).
    pub request_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot every counter plus the latency histogram.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            connections_opened: self.connections_opened.get(),
            connections_closed: self.connections_closed.get(),
            frames_received: self.frames_received.get(),
            responses_sent: self.responses_sent.get(),
            protocol_errors: self.protocol_errors.get(),
            disconnects_mid_frame: self.disconnects_mid_frame.get(),
            error_responses: self.error_responses.get(),
            keys_processed: self.keys_processed.get(),
            batched_ops: self.batched_ops.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            slow_requests: self.slow_requests.get(),
            accept_errors: self.accept_errors.get(),
            open_connections: self.open_connections.get(),
            pipelined_depth: self.pipelined_depth.get(),
            request_latency: self.request_latency.snapshot(),
        }
    }

    /// Raise a watermark gauge to at least `v`. Racing updates can
    /// settle slightly low under contention; a watermark read as a
    /// lower bound tolerates that.
    pub fn raise_pipelined_depth(&self, v: i64) {
        if v > self.pipelined_depth.get() {
            self.pipelined_depth.set(v);
        }
    }
}

/// An owned, serializable copy of [`ServerMetrics`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CountersSnapshot {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections fully torn down.
    pub connections_closed: u64,
    /// Complete frames received.
    pub frames_received: u64,
    /// Response frames written.
    pub responses_sent: u64,
    /// Protocol-level failures (malformed, oversized, bad version).
    pub protocol_errors: u64,
    /// Peers that vanished mid-frame.
    pub disconnects_mid_frame: u64,
    /// Error responses sent.
    pub error_responses: u64,
    /// Keys processed across all batch operations.
    pub keys_processed: u64,
    /// Keys served through the batched probe kernels (multi-key
    /// INSERT/CONTAINS requests).
    pub batched_ops: u64,
    /// Payload bytes read.
    pub bytes_in: u64,
    /// Payload bytes written.
    pub bytes_out: u64,
    /// Requests slower than the slow-request threshold.
    pub slow_requests: u64,
    /// Failed `accept(2)` calls.
    pub accept_errors: u64,
    /// Connections open at snapshot time.
    pub open_connections: i64,
    /// Deepest single-drain pipelining observed on any connection.
    pub pipelined_depth: i64,
    /// Server-side service-time histogram.
    pub request_latency: HistogramSnapshot,
}

impl CountersSnapshot {
    fn serialize(&self, w: &mut ByteWriter) {
        for v in [
            self.connections_opened,
            self.connections_closed,
            self.frames_received,
            self.responses_sent,
            self.protocol_errors,
            self.disconnects_mid_frame,
            self.error_responses,
            self.keys_processed,
            self.batched_ops,
            self.bytes_in,
            self.bytes_out,
            self.slow_requests,
        ] {
            w.put_u64(v);
        }
        serialize_histogram(&self.request_latency, w);
        // Appended after the histogram so the field block above keeps
        // its original offsets (wire-compatible extension).
        w.put_u64(self.accept_errors);
        w.put_u64(self.open_connections as u64);
        w.put_u64(self.pipelined_depth as u64);
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, SerialError> {
        Ok(CountersSnapshot {
            connections_opened: r.take_u64()?,
            connections_closed: r.take_u64()?,
            frames_received: r.take_u64()?,
            responses_sent: r.take_u64()?,
            protocol_errors: r.take_u64()?,
            disconnects_mid_frame: r.take_u64()?,
            error_responses: r.take_u64()?,
            keys_processed: r.take_u64()?,
            batched_ops: r.take_u64()?,
            bytes_in: r.take_u64()?,
            bytes_out: r.take_u64()?,
            slow_requests: r.take_u64()?,
            request_latency: deserialize_histogram(r)?,
            accept_errors: r.take_u64()?,
            open_connections: r.take_u64()? as i64,
            pipelined_depth: r.take_u64()? as i64,
        })
    }
}

/// One served filter's row in the STATS inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterRow {
    /// Registry name.
    pub name: String,
    /// Backend family.
    pub backend: crate::proto::Backend,
    /// Distinct keys represented (racing snapshot).
    pub len: u64,
    /// Heap bytes.
    pub size_in_bytes: u64,
}

/// The full STATS response body: counters plus filter inventory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Server-wide counters and latency.
    pub counters: CountersSnapshot,
    /// One row per registered filter, in name order.
    pub filters: Vec<FilterRow>,
}

impl StatsReport {
    /// Serialize into a STATS frame body.
    pub fn serialize(&self, w: &mut ByteWriter) {
        self.counters.serialize(w);
        w.put_u64(self.filters.len() as u64);
        for row in &self.filters {
            w.put_bytes(row.name.as_bytes());
            w.put_u32(match row.backend {
                crate::proto::Backend::AtomicBloom => 0,
                crate::proto::Backend::ShardedCuckoo => 1,
                crate::proto::Backend::ShardedCqf => 2,
                crate::proto::Backend::RegisterBloom => 3,
                crate::proto::Backend::Compacting => 4,
                crate::proto::Backend::TwoChoiceBloom => 5,
            });
            w.put_u64(row.len);
            w.put_u64(row.size_in_bytes);
        }
    }

    /// Deserialize from a STATS frame body.
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<Self, SerialError> {
        let counters = CountersSnapshot::deserialize(r)?;
        let n = r.take_u64()? as usize;
        if n > 1 << 20 {
            return Err(SerialError::Corrupt("stats filter count"));
        }
        let mut filters = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = String::from_utf8(r.take_bytes()?)
                .map_err(|_| SerialError::Corrupt("stats name not utf-8"))?;
            let backend = match r.take_u32()? {
                0 => crate::proto::Backend::AtomicBloom,
                1 => crate::proto::Backend::ShardedCuckoo,
                2 => crate::proto::Backend::ShardedCqf,
                3 => crate::proto::Backend::RegisterBloom,
                4 => crate::proto::Backend::Compacting,
                5 => crate::proto::Backend::TwoChoiceBloom,
                _ => return Err(SerialError::Corrupt("stats backend")),
            };
            filters.push(FilterRow {
                name,
                backend,
                len: r.take_u64()?,
                size_in_bytes: r.take_u64()?,
            });
        }
        Ok(StatsReport { counters, filters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_selection_has_explicit_zero_bucket() {
        // Regression: 0 ns and 1 ns used to share a bucket, so a
        // timer whose resolution rounded a fast request down to zero
        // silently inflated the 1 ns bin. Pin the boundaries.
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_nanos(1));
        let snap = h.snapshot();
        assert_eq!(snap.counts()[0], 1);
        assert_eq!(snap.counts()[1], 1);
        assert_eq!(snap.quantile_ns(0.25), 0);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let h = LatencyHistogram::new();
        // 90 samples at ~1us, 10 at ~1ms.
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_000));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_000_000));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.quantile_ns(0.50);
        let p99 = snap.quantile_ns(0.99);
        assert!((1_000..4_096).contains(&p50), "p50 {p50}");
        assert!((1_000_000..4_194_304).contains(&p99), "p99 {p99}");
        assert!(snap.quantile_ns(0.0) > 0);
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.99), 0);
    }

    #[test]
    fn merge_sums_buckets() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(50));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn stats_report_roundtrip() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        let m = ServerMetrics::new();
        m.connections_opened.add(5);
        m.frames_received.add(100);
        m.keys_processed.add(4096);
        m.batched_ops.add(4000);
        m.slow_requests.inc();
        m.accept_errors.inc();
        m.open_connections.add(3);
        m.raise_pipelined_depth(7);
        m.raise_pipelined_depth(2); // watermark: lower values don't regress it
        let report = StatsReport {
            counters: CountersSnapshot {
                request_latency: h.snapshot(),
                ..m.snapshot()
            },
            filters: vec![FilterRow {
                name: "urls".into(),
                backend: crate::proto::Backend::AtomicBloom,
                len: 1_000,
                size_in_bytes: 2_048,
            }],
        };
        let mut w = ByteWriter::new();
        report.serialize(&mut w);
        let bytes = w.into_bytes();
        let back = StatsReport::deserialize(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.counters.slow_requests, 1);
        assert_eq!(back.counters.accept_errors, 1);
        assert_eq!(back.counters.open_connections, 3);
        assert_eq!(back.counters.pipelined_depth, 7);
        assert_eq!(back.counters.request_latency.sum(), 3_000);
        // Truncations error cleanly.
        for cut in 0..bytes.len() {
            assert!(StatsReport::deserialize(&mut ByteReader::new(&bytes[..cut])).is_err());
        }
    }
}
