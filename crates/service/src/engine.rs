//! The filter-serving core shared by both transports.
//!
//! [`Engine`] owns everything that is *not* a socket: the named-filter
//! registry, the per-server metrics set, the slow-request log, the
//! shutdown flag, and the request dispatcher. The threaded server
//! ([`crate::server::FilterServer`]) and the event-driven server
//! ([`crate::evented::EventedFilterServer`]) are thin transports over
//! one `Engine` each — they read frames differently, but every payload
//! funnels through the same crate-private `dispatch`, so the two servers
//! are response-for-response identical by construction (the e2e suite
//! asserts this bit-for-bit).
//!
//! The registry is a `RwLock<BTreeMap<name, Arc<ServedFilter>>>`.
//! Request handling clones the `Arc` and releases the registry lock
//! before touching the filter — concurrency across requests to one
//! filter is then governed by the filter's own synchronisation
//! (wait-free atomics for the Bloom backend, per-shard mutexes for
//! the sharded backends), exactly as measured in E14/E15.

use crate::metrics::{FilterRow, ServerMetrics, StatsReport};
use crate::proto::{Backend, ErrorCode, HeaderError, Request, Response, DEFAULT_MAX_FRAME};
use bloofi::{BloofiConfig, BloofiIndex};
use bloom::{AtomicBlockedBloomFilter, RegisterBlockedBloomFilter, TwoChoiceRegisterBloomFilter};
use compacting::{CompactingConfig, CompactingFilter};
use concurrent::{Sharded, MAX_SHARD_BITS};
use cuckoo::CuckooFilter;
use filter_core::{BatchedFilter, ByteReader, ByteWriter, Filter, FilterError, SerialError};
use quotient::CountingQuotientFilter;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, SystemTime};
use telemetry::expo::{FamilyKind, TextRenderer};
use telemetry::{StaticCounter, StaticGauge};

/// Requests fully served (response written), across every server in
/// the process.
pub static SERVICE_REQUESTS: StaticCounter = StaticCounter::new(
    "bb_service_requests_total",
    "Requests fully served across all filter servers in the process.",
);

/// Requests whose service time exceeded the configured slow-request
/// threshold (each also lands in the per-server slow-request log).
pub static SERVICE_SLOW_REQUESTS: StaticCounter = StaticCounter::new(
    "bb_service_slow_requests_total",
    "Requests slower than the configured slow-request threshold.",
);

/// Filters currently registered across every server in the process
/// (wire CREATEs plus direct `register` calls).
pub static FILTERS_REGISTERED: StaticGauge = StaticGauge::new(
    "bb_service_filters_registered",
    "Filters currently registered across all filter servers.",
);

/// MULTI_CONTAINS requests served (each fans one key batch across
/// the whole registry through the Bloofi index).
pub static MULTI_CONTAINS_REQUESTS: StaticCounter = StaticCounter::new(
    "bb_multi_contains_requests_total",
    "MULTI_CONTAINS requests served.",
);

/// Keys looked up across the registry by MULTI_CONTAINS requests.
pub static MULTI_CONTAINS_KEYS: StaticCounter = StaticCounter::new(
    "bb_multi_contains_keys_total",
    "Keys looked up across the registry by MULTI_CONTAINS.",
);

/// SIMD dispatch tier this process probes at, as the stable numeric
/// code of [`filter_core::SimdLevel::code`] (1=swar, 2=sse2, 3=avx2,
/// 4=avx512, 5=neon). An info-style gauge: set once at registry init
/// so a METRICS scrape shows which tier a server actually runs.
pub static SIMD_LEVEL: StaticGauge = StaticGauge::new(
    "bb_simd_level",
    "Active SIMD dispatch tier (1=swar, 2=sse2, 3=avx2, 4=avx512, 5=neon).",
);

/// Eagerly register this crate's metric families so they render in
/// the exposition even before any traffic touches them.
pub fn register_metrics() {
    SERVICE_REQUESTS.register();
    SERVICE_SLOW_REQUESTS.register();
    FILTERS_REGISTERED.register();
    MULTI_CONTAINS_REQUESTS.register();
    MULTI_CONTAINS_KEYS.register();
    SIMD_LEVEL.register();
    // Idempotent absolute set: the gauge only moves if the dispatch
    // level changed since the last registration (e.g. a test forced
    // a tier between binds).
    let code = filter_core::simd::active_level().code() as i64;
    SIMD_LEVEL.add(code - SIMD_LEVEL.get());
}

/// Register every layer's metric families (filter crates + this one)
/// so the first scrape renders them all, traffic or not. Both servers
/// call this from `bind`.
pub(crate) fn register_all_layers() {
    bloom::register_metrics();
    cuckoo::register_metrics();
    quotient::register_metrics();
    concurrent::register_metrics();
    compacting::register_metrics();
    bloofi::register_metrics();
    telemetry::trace::register_metrics();
    register_metrics();
}

/// Tuning knobs shared by [`crate::server::FilterServer`] and
/// [`crate::evented::EventedFilterServer`]. Fields that only apply to
/// one transport say so.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (concurrently served connections). Threaded
    /// server only; the evented server serves every connection from
    /// one readiness loop.
    pub workers: usize,
    /// Accepted connections that may queue for a free worker before
    /// the accept thread itself blocks. Threaded server only.
    pub backlog: usize,
    /// Per-connection frame payload limit; larger length prefixes are
    /// refused before allocation.
    pub max_frame: u32,
    /// Socket read timeout — the cadence at which idle workers poll
    /// the shutdown flag (threaded), and the readiness-wait tick on
    /// which the evented loop polls it.
    pub read_timeout: Duration,
    /// Largest `capacity` a CREATE may request (bounds server memory
    /// taken by one request).
    pub max_capacity: u64,
    /// Requests slower than this land in the slow-request log (and
    /// bump the slow-request counters). METRICS renders the log as
    /// `# slow ...` comment lines with opcode/backend/batch context.
    pub slow_request_threshold: Duration,
    /// Close a connection that has not delivered a complete frame for
    /// this long (`None` disables the deadline). Dribbling bytes of a
    /// frame still counts as progress only when a frame completes —
    /// this is the slow-loris backstop, not a per-read timeout.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 64,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(50),
            max_capacity: 1 << 28,
            slow_request_threshold: Duration::from_millis(10),
            idle_timeout: None,
        }
    }
}

/// A filter instance the server can host.
///
/// The six backends cover the tutorial's concurrency spectrum: a
/// wait-free atomic blocked Bloom (insert/contains only), a sharded
/// cuckoo filter (adds deletion), a sharded counting quotient filter
/// (adds multiplicity counts), the SIMD register-blocked Bloom
/// (insert/contains at one mask compare per key), the compacting
/// filter LSM (insert/contains at static-filter space, background
/// compaction into fuse tiers), and the two-choice register-blocked
/// Bloom (emptier-block placement for one-choice FPR at ~2 extra
/// bits/key).
pub enum ServedFilter {
    /// Wait-free insert/contains; no deletion, no counts.
    Bloom(AtomicBlockedBloomFilter),
    /// Deletable membership via sharded cuckoo.
    Cuckoo(Sharded<CuckooFilter>),
    /// Counting + deletable via sharded CQF.
    Cqf(Sharded<CountingQuotientFilter>),
    /// Sharded register-blocked Bloom: insert/contains through the
    /// vectorised probe engine; no deletion, no counts.
    RegisterBloom(Sharded<RegisterBlockedBloomFilter>),
    /// Compacting filter LSM: wait-free insert/contains, background
    /// compaction into static fuse tiers; no deletion, no counts.
    Compacting(CompactingFilter),
    /// Sharded two-choice register-blocked Bloom: insert places into
    /// the emptier of two candidate blocks, contains ORs two probes;
    /// no deletion, no counts.
    TwoChoice(Sharded<TwoChoiceRegisterBloomFilter>),
}

impl ServedFilter {
    /// Which wire-protocol backend tag this instance answers to.
    pub fn backend(&self) -> Backend {
        match self {
            ServedFilter::Bloom(_) => Backend::AtomicBloom,
            ServedFilter::Cuckoo(_) => Backend::ShardedCuckoo,
            ServedFilter::Cqf(_) => Backend::ShardedCqf,
            ServedFilter::RegisterBloom(_) => Backend::RegisterBloom,
            ServedFilter::Compacting(_) => Backend::Compacting,
            ServedFilter::TwoChoice(_) => Backend::TwoChoiceBloom,
        }
    }

    /// Single-key membership, whatever the backend — the
    /// MULTI_CONTAINS candidate-confirmation probe.
    pub fn contains_one(&self, key: u64) -> bool {
        match self {
            ServedFilter::Bloom(f) => f.contains(key),
            ServedFilter::Cuckoo(f) => f.contains(key),
            ServedFilter::Cqf(f) => f.contains(key),
            ServedFilter::RegisterBloom(f) => f.contains(key),
            ServedFilter::Compacting(f) => f.contains(key),
            ServedFilter::TwoChoice(f) => f.contains(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            ServedFilter::Bloom(f) => f.len(),
            ServedFilter::Cuckoo(f) => f.len(),
            ServedFilter::Cqf(f) => f.len(),
            ServedFilter::RegisterBloom(f) => f.len(),
            ServedFilter::Compacting(f) => f.len(),
            ServedFilter::TwoChoice(f) => f.len(),
        }
    }

    fn size_in_bytes(&self) -> usize {
        match self {
            ServedFilter::Bloom(f) => f.size_in_bytes(),
            ServedFilter::Cuckoo(f) => f.size_in_bytes(),
            ServedFilter::Cqf(f) => f.size_in_bytes(),
            ServedFilter::RegisterBloom(f) => f.size_in_bytes(),
            ServedFilter::Compacting(f) => f.size_in_bytes(),
            ServedFilter::TwoChoice(f) => f.size_in_bytes(),
        }
    }

    /// Per-shard operation counts for the sharded backends (`None`
    /// for the unsharded atomic Bloom). METRICS renders these as
    /// `bb_filter_shard_ops_total{name,shard}` so skewed key streams
    /// show up as skewed shard loads.
    pub fn shard_ops(&self) -> Option<Vec<u64>> {
        match self {
            ServedFilter::Bloom(_) => None,
            ServedFilter::Cuckoo(f) => Some(f.shard_ops()),
            ServedFilter::Cqf(f) => Some(f.shard_ops()),
            ServedFilter::RegisterBloom(f) => Some(f.shard_ops()),
            ServedFilter::Compacting(_) => None,
            ServedFilter::TwoChoice(f) => Some(f.shard_ops()),
        }
    }

    /// Serialize into a portable blob a blob-CREATE on any node can
    /// rebuild: raw `to_bytes` for the unsharded backends, the
    /// multi-shard envelope for the sharded ones (preserving shard
    /// structure and per-shard seeds across migration).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        match self {
            ServedFilter::Bloom(f) => f.to_bytes(),
            ServedFilter::Cuckoo(f) => encode_shard_envelope(&f.for_each_shard(|s| s.to_bytes())),
            ServedFilter::Cqf(f) => encode_shard_envelope(&f.for_each_shard(|s| s.to_bytes())),
            ServedFilter::RegisterBloom(f) => {
                encode_shard_envelope(&f.for_each_shard(|s| s.to_bytes()))
            }
            ServedFilter::Compacting(f) => f.to_bytes(),
            ServedFilter::TwoChoice(f) => {
                encode_shard_envelope(&f.for_each_shard(|s| s.to_bytes()))
            }
        }
    }
}

/// Magic prefix of the multi-shard snapshot envelope. Chosen to
/// collide with none of the per-filter serialization magics, so
/// blob-CREATE can sniff envelope vs raw single-filter blob.
pub(crate) const SHARD_ENVELOPE_MAGIC: u32 = 0x5AED_B10C;

/// `magic | u32 shard count | count × length-prefixed shard blobs`.
fn encode_shard_envelope(shards: &[Vec<u8>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(SHARD_ENVELOPE_MAGIC);
    w.put_u32(shards.len() as u32);
    for blob in shards {
        w.put_bytes(blob);
    }
    w.into_bytes()
}

/// Split an envelope back into per-shard blobs. `None` when the bytes
/// do not start with the envelope magic (caller falls back to the raw
/// single-filter path); `Some(Err)` when the envelope itself is
/// malformed.
fn decode_shard_envelope(bytes: &[u8]) -> Option<Result<Vec<Vec<u8>>, SerialError>> {
    if bytes.len() < 4 || bytes[..4] != SHARD_ENVELOPE_MAGIC.to_le_bytes() {
        return None;
    }
    Some((|| {
        let mut r = ByteReader::new(bytes);
        r.take_u32()?; // magic, checked above
        let n = r.take_u32()? as usize;
        if n == 0 || !n.is_power_of_two() || n > 1 << MAX_SHARD_BITS {
            return Err(SerialError::Corrupt("envelope shard count"));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(r.take_bytes()?);
        }
        if r.remaining() != 0 {
            return Err(SerialError::Corrupt("trailing bytes after envelope"));
        }
        Ok(shards)
    })())
}

/// Per-request context carried from dispatch to the slow-request log.
/// Opaque outside the crate; benches that drive [`dispatch`] directly
/// simply discard it.
#[derive(Clone, Copy)]
pub struct ReqInfo {
    /// Wire opcode (1..=9), or 0 when the payload failed decoding.
    op: u8,
    /// Backend the request resolved to, when it named a filter.
    backend: Option<Backend>,
    /// Keys carried by the request (batch size).
    batch: u32,
}

impl ReqInfo {
    fn bare(op: u8) -> ReqInfo {
        ReqInfo {
            op,
            backend: None,
            batch: 0,
        }
    }

    /// Pack into the event ring's second payload slot:
    /// `op << 56 | (backend_tag + 1) << 48 | batch` (backend 0 means
    /// "none").
    fn packed(self) -> u64 {
        let be = match self.backend {
            None => 0u64,
            Some(Backend::AtomicBloom) => 1,
            Some(Backend::ShardedCuckoo) => 2,
            Some(Backend::ShardedCqf) => 3,
            Some(Backend::RegisterBloom) => 4,
            Some(Backend::Compacting) => 5,
            Some(Backend::TwoChoiceBloom) => 6,
        };
        (self.op as u64) << 56 | be << 48 | self.batch as u64
    }

    /// Inverse of [`ReqInfo::packed`], for rendering the slow log.
    fn unpack(b: u64) -> (u8, &'static str, u32) {
        let op = (b >> 56) as u8;
        let backend = match (b >> 48) & 0xff {
            1 => "atomic-bloom",
            2 => "sharded-cuckoo",
            3 => "sharded-cqf",
            4 => "register-bloom",
            5 => "compacting",
            6 => "two-choice-bloom",
            _ => "-",
        };
        (op, backend, b as u32)
    }

    fn op_name(op: u8) -> &'static str {
        match op {
            1 => "CREATE",
            2 => "INSERT",
            3 => "CONTAINS",
            4 => "COUNT",
            5 => "DELETE",
            6 => "STATS",
            7 => "METRICS",
            8 => "SNAPSHOT",
            9 => "FORGET",
            10 => "MULTI_CONTAINS",
            11 => "TRACES",
            _ => "BAD",
        }
    }
}

/// One entry of the slow-request log.
pub(crate) struct SlowEntry {
    /// Monotone sequence number (total slow requests ever logged).
    pub seq: u64,
    /// Wall-clock microseconds since the UNIX epoch.
    pub t_us: u64,
    /// Service time in nanoseconds.
    pub latency_ns: u64,
    /// Packed opcode/backend/batch context ([`ReqInfo::packed`]).
    pub packed: u64,
    /// The requesting peer, when the transport knows it.
    pub peer: Option<SocketAddr>,
    /// Trace the request belonged to (0 when untraced).
    pub trace_id: u64,
}

/// Bounded newest-first slow-request log. Unlike the telemetry
/// [`telemetry::EventRing`] it previously rode on, entries carry the
/// peer address and trace id, and overwrites on wrap are counted
/// (`dropped`) instead of silent.
pub(crate) struct SlowLog {
    cap: usize,
    emitted: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            emitted: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    fn emit(&self, latency_ns: u64, packed: u64, peer: Option<SocketAddr>, trace_id: u64) {
        let seq = self.emitted.fetch_add(1, Ordering::Relaxed);
        let t_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut g = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if g.len() == self.cap {
            g.pop_front();
        }
        g.push_back(SlowEntry {
            seq,
            t_us,
            latency_ns,
            packed,
            peer,
            trace_id,
        });
    }

    /// Oldest-to-newest copy of the retained entries.
    pub(crate) fn snapshot(&self) -> Vec<SlowEntry> {
        let g = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        g.iter()
            .map(|e| SlowEntry {
                seq: e.seq,
                t_us: e.t_us,
                latency_ns: e.latency_ns,
                packed: e.packed,
                peer: e.peer,
                trace_id: e.trace_id,
            })
            .collect()
    }

    /// Entries ever logged.
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Entries overwritten by wrap (0 until the log fills).
    pub(crate) fn dropped(&self) -> u64 {
        self.emitted().saturating_sub(self.cap as u64)
    }
}

/// Cuckoo fingerprint width hitting a target FPR: the filter's false
/// positive rate is ≈ `2b / 2^f` with `b = 4` slots per bucket, so
/// `f = ceil(log2(8 / eps))`, clamped to the implementation's 2..=32.
pub fn cuckoo_fp_bits(eps: f64) -> u32 {
    ((8.0 / eps).log2().ceil() as u32).clamp(2, 32)
}

/// Build the Bloom backend exactly as the server does for a CREATE
/// with these parameters — tests use this to construct a bit-identical
/// in-process oracle.
pub fn build_atomic_bloom(capacity: u64, eps: f64, seed: u64) -> AtomicBlockedBloomFilter {
    AtomicBlockedBloomFilter::with_seed(capacity as usize, eps, seed)
}

/// Build the sharded-cuckoo backend exactly as the server does
/// (per-shard seeds derived from `seed` so shards stay decorrelated
/// but the whole construction is reproducible).
pub fn build_sharded_cuckoo(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<CuckooFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    let fp_bits = cuckoo_fp_bits(eps);
    Sharded::new(shard_bits, |i| {
        CuckooFilter::with_params(
            per_shard,
            fp_bits,
            cuckoo::filter::BUCKET_SIZE,
            seed ^ (0xcc00 + i as u64),
        )
    })
}

/// Build the sharded-CQF backend exactly as the server does. Shards
/// auto-expand, so a CREATE capacity is a sizing hint rather than a
/// hard limit (matching the CQF's own `for_capacity` contract).
pub fn build_sharded_cqf(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<CountingQuotientFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    let slots = (per_shard as f64 / quotient::qf::DEFAULT_MAX_LOAD).ceil() as usize;
    let q = slots.next_power_of_two().trailing_zeros().max(4);
    let r = ((1.0 / eps).log2().ceil() as u32).clamp(2, 60.min(64 - q));
    Sharded::new(shard_bits, |i| {
        let mut f = CountingQuotientFilter::with_seed(q, r, seed ^ (0xc0f0 + i as u64));
        f.set_auto_expand(true);
        f
    })
}

/// Build the register-blocked Bloom backend exactly as the server
/// does (per-shard seeds derived from `seed`, matching the other
/// sharded builders so tests can construct bit-identical oracles).
pub fn build_sharded_register_bloom(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<RegisterBlockedBloomFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    Sharded::new(shard_bits, |i| {
        RegisterBlockedBloomFilter::with_seed(per_shard, eps, seed ^ (0x4b10 + i as u64))
    })
}

/// Build the two-choice register-blocked Bloom backend exactly as
/// the server does (per-shard seeds derived from `seed`, matching the
/// other sharded builders so tests can construct bit-identical
/// oracles).
pub fn build_sharded_two_choice(
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
) -> Sharded<TwoChoiceRegisterBloomFilter> {
    let per_shard = ((capacity as usize) >> shard_bits).max(64);
    Sharded::new(shard_bits, |i| {
        TwoChoiceRegisterBloomFilter::with_seed(per_shard, eps, seed ^ (0x2c10 + i as u64))
    })
}

/// Build the compacting backend exactly as the server does for a
/// CREATE with these parameters. The memtable front holds 1/16th of
/// the stated capacity (floored at 1024 keys) so steady-state space
/// is dominated by the static fuse tiers, not the mutable front.
pub fn build_compacting(capacity: u64, eps: f64, seed: u64) -> CompactingFilter {
    let front = ((capacity as usize) / 16).max(1024);
    CompactingFilter::new(CompactingConfig::new(front, eps, seed))
}

/// Everything a filter server is apart from its sockets: registry,
/// metrics, slow-request log, shutdown flag, config, dispatcher. Each
/// running server owns one.
pub struct Engine {
    pub(crate) registry: RwLock<BTreeMap<String, Arc<ServedFilter>>>,
    /// Bloofi index over the registry: MULTI_CONTAINS descends this
    /// tree instead of scanning every filter. Kept coherent with the
    /// registry under a strict lock order (registry before index);
    /// key inserts hit the index *before* the filter, so the index is
    /// always a superset of filter contents — never a false negative.
    pub(crate) index: RwLock<BloofiIndex>,
    pub(crate) metrics: ServerMetrics,
    /// Slow-request log: newest 256 requests over the threshold, with
    /// packed opcode/backend/batch context (see [`ReqInfo::packed`]),
    /// the peer address, and the trace id when the request was traced.
    pub(crate) slowlog: SlowLog,
    pub(crate) stop: AtomicBool,
    pub(crate) config: ServerConfig,
}

impl Engine {
    /// Fresh engine with an empty registry.
    pub fn new(config: ServerConfig) -> Engine {
        Engine {
            registry: RwLock::new(BTreeMap::new()),
            index: RwLock::new(BloofiIndex::new(BloofiConfig::default())),
            metrics: ServerMetrics::new(),
            slowlog: SlowLog::new(256),
            stop: AtomicBool::new(false),
            config,
        }
    }

    /// Has shutdown been requested?
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// The per-server metrics set (same data STATS serves).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Install a filter directly, bypassing the wire CREATE. Returns
    /// `false` when the name is already taken.
    pub fn register(&self, name: &str, filter: ServedFilter) -> bool {
        let mut reg = write_lock(&self.registry);
        match reg.entry(name.to_string()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(Arc::new(filter));
                FILTERS_REGISTERED.add(1);
                // The filter arrived pre-built, so its key set is
                // unknown: index a saturated leaf (conservative —
                // always descended, never a false negative).
                let mut idx = write_lock(&self.index);
                idx.add_filter(name);
                idx.saturate_filter(name);
                idx.publish_gauges();
                true
            }
        }
    }

    /// Install a filter directly *with* its key inventory: the index
    /// gets an exact tracked leaf instead of a saturated one, so
    /// MULTI_CONTAINS can prune this filter. The caller warrants that
    /// `keys` is exactly the set inserted into `filter` — missing
    /// keys would surface as index false negatives. Returns `false`
    /// when the name is already taken.
    pub fn register_tracked(&self, name: &str, filter: ServedFilter, keys: &[u64]) -> bool {
        let mut reg = write_lock(&self.registry);
        match reg.entry(name.to_string()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(Arc::new(filter));
                FILTERS_REGISTERED.add(1);
                let mut idx = write_lock(&self.index);
                let mut leaf = idx.config().leaf_summary();
                for &k in keys {
                    leaf.insert(k);
                }
                idx.add_filter_with(name, Some(&leaf));
                idx.publish_gauges();
                true
            }
        }
    }

    /// Rebuild the Bloofi index from the current registry in one
    /// balanced bottom-up pass ([`BloofiIndex::build_from`]). Every
    /// leaf is saturated (the registry cannot enumerate its keys), so
    /// this trades per-leaf selectivity for a balanced tree — useful
    /// after bulk [`register`](Self::register) loading; filters
    /// created over the wire already maintain exact summaries
    /// incrementally.
    pub fn rebuild_index(&self) {
        let reg = read_lock(&self.registry);
        let mut idx = write_lock(&self.index);
        let cfg = idx.config();
        let entries = reg.keys().map(|name| {
            let mut s = cfg.leaf_summary();
            s.saturate();
            (name.clone(), s)
        });
        *idx = BloofiIndex::build_from(cfg, entries.collect::<Vec<_>>());
        idx.publish_gauges();
    }

    /// Which registered filters (probably) contain each key — the
    /// MULTI_CONTAINS core. Candidates come from an O(d·log N) Bloofi
    /// descent per key (hash-hoisted in 32-key chunks), then each
    /// candidate is confirmed against the actual filter: no false
    /// negatives (the index covers every inserted key), and false
    /// positives only where a leaf filter itself false-positives.
    /// The answer is a subset of the flat scan's — a leaf filter
    /// false-positive the index never proposed is (correctly) never
    /// reported. Per-key lists are sorted.
    pub fn multi_contains(&self, keys: &[u64]) -> Vec<Vec<String>> {
        // Lock order: registry before index, matching every
        // structural site, so CREATE/FORGET can never deadlock
        // against a concurrent MULTI_CONTAINS.
        let (reg, idx) = {
            let _lock_sp = telemetry::trace::span("engine:lock");
            (read_lock(&self.registry), read_lock(&self.index))
        };
        let mut out = Vec::with_capacity(keys.len());
        let mut candidates = Vec::new();
        for chunk in keys.chunks(filter_core::PROBE_CHUNK) {
            idx.multi_contains_chunk(chunk, &mut candidates);
            for (&key, leaf_ids) in chunk.iter().zip(&candidates) {
                let mut names: Vec<String> = leaf_ids
                    .iter()
                    .map(|&id| idx.leaf_name(id))
                    .filter(|name| reg.get(*name).is_some_and(|f| f.contains_one(key)))
                    .map(str::to_string)
                    .collect();
                names.sort_unstable();
                out.push(names);
            }
        }
        out
    }

    /// The flat-registry answer to the same question: probe every
    /// filter for every key. This is the oracle MULTI_CONTAINS is
    /// measured against (experiment E26) and must stay semantically
    /// identical to [`multi_contains`](Self::multi_contains).
    pub fn multi_contains_flat(&self, keys: &[u64]) -> Vec<Vec<String>> {
        let reg = read_lock(&self.registry);
        keys.iter()
            .map(|&key| {
                reg.iter()
                    .filter(|(_, f)| f.contains_one(key))
                    .map(|(name, _)| name.clone())
                    .collect()
            })
            .collect()
    }

    /// Account one fully-served request: latency histogram, process
    /// counters, and the slow-request log. Both transports call this
    /// with the same ordering (after the response is written or
    /// queued, passing the request guard's trace id — minted on
    /// demand for slow requests — so the slow-log line and the
    /// tail-captured trace share an id), which is what keeps their
    /// STATS deltas identical. Public for the same reason as
    /// [`dispatch`]: the E27 bench harness drives the exact per-frame
    /// accounting path in-process, without sockets.
    pub fn record_request(
        &self,
        dt: Duration,
        info: ReqInfo,
        peer: Option<SocketAddr>,
        trace_id: u64,
    ) {
        self.metrics.request_latency.record(dt);
        SERVICE_REQUESTS.inc();
        if dt >= self.config.slow_request_threshold {
            self.metrics.slow_requests.inc();
            SERVICE_SLOW_REQUESTS.inc();
            self.slowlog.emit(
                dt.as_nanos().min(u64::MAX as u128) as u64,
                info.packed(),
                peer,
                trace_id,
            );
        }
    }
}

pub(crate) fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

pub(crate) fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

pub(crate) fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn filter_err(e: FilterError) -> Response {
    err(ErrorCode::Filter, e.to_string())
}

/// Decode one frame payload and execute it against the registry.
/// Returns the response plus the request context the slow-request log
/// records. Public so the bench harness (E27) can drive the exact
/// server dispatch path in-process, without sockets.
pub fn dispatch(engine: &Engine, payload: &[u8]) -> (Response, ReqInfo) {
    let m = &engine.metrics;
    let req = match Request::decode(payload) {
        Ok(Ok(req)) => req,
        Ok(Err(op)) => {
            m.protocol_errors.inc();
            return (
                err(ErrorCode::UnknownOpcode, format!("unknown opcode {op}")),
                ReqInfo::bare(0),
            );
        }
        Err(HeaderError::Version(v)) => {
            m.protocol_errors.inc();
            return (
                err(
                    ErrorCode::UnsupportedVersion,
                    format!(
                        "version {v}, this server speaks {}",
                        crate::proto::PROTO_VERSION
                    ),
                ),
                ReqInfo::bare(0),
            );
        }
        Err(HeaderError::Serial(e)) => {
            m.protocol_errors.inc();
            return (
                err(ErrorCode::BadFrame, format!("malformed payload: {e}")),
                ReqInfo::bare(0),
            );
        }
    };
    match req {
        Request::Create {
            name,
            backend,
            capacity,
            eps,
            shard_bits,
            seed,
            blob,
        } => (
            handle_create(
                engine, &name, backend, capacity, eps, shard_bits, seed, &blob,
            ),
            ReqInfo {
                op: 1,
                backend: Some(backend),
                batch: 0,
            },
        ),
        Request::Insert { name, keys } => {
            let (resp, backend) = handle_insert(engine, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 2,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Contains { name, keys } => {
            let (resp, backend) = handle_contains(engine, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 3,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Count { name, keys } => {
            let (resp, backend) = handle_count(engine, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 4,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Delete { name, keys } => {
            let (resp, backend) = handle_delete(engine, &name, &keys);
            (
                resp,
                ReqInfo {
                    op: 5,
                    backend,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Stats => (handle_stats(engine), ReqInfo::bare(6)),
        Request::Metrics => (Response::Text(render_metrics(engine)), ReqInfo::bare(7)),
        Request::Snapshot { name } => {
            let (resp, backend) = handle_snapshot(engine, &name);
            (
                resp,
                ReqInfo {
                    op: 8,
                    backend,
                    batch: 0,
                },
            )
        }
        Request::Forget { name } => (handle_forget(engine, &name), ReqInfo::bare(9)),
        Request::MultiContains { keys } => {
            let resp = handle_multi_contains(engine, &keys);
            (
                resp,
                ReqInfo {
                    op: 10,
                    backend: None,
                    batch: keys.len() as u32,
                },
            )
        }
        Request::Traces { json } => {
            let traces = telemetry::trace::store().take();
            let resp = if json {
                Response::Text(telemetry::trace::chrome_trace_json(&traces))
            } else {
                Response::Traces(traces)
            };
            (resp, ReqInfo::bare(11))
        }
    }
}

// `Response` is as large as its Stats variant; error responses here
// are always the small Error variant and are immediately serialised,
// so boxing would only add an allocation to the hot error path.
#[allow(clippy::result_large_err)]
fn lookup(engine: &Engine, name: &str) -> Result<Arc<ServedFilter>, Response> {
    // The span covers registry lock acquisition + the name lookup;
    // the filter call itself runs after the lock is released.
    let _sp = telemetry::trace::span("engine:lock");
    read_lock(&engine.registry)
        .get(name)
        .cloned()
        .ok_or_else(|| err(ErrorCode::NoSuchFilter, format!("no filter named '{name}'")))
}

#[allow(clippy::too_many_arguments)]
fn handle_create(
    engine: &Engine,
    name: &str,
    backend: Backend,
    capacity: u64,
    eps: f64,
    shard_bits: u32,
    seed: u64,
    blob: &[u8],
) -> Response {
    if !name.chars().all(|c| c.is_ascii_graphic()) {
        return err(
            ErrorCode::BadName,
            "filter names must be printable ASCII without spaces",
        );
    }
    // Fast-path duplicate check without building anything.
    if read_lock(&engine.registry).contains_key(name) {
        return err(ErrorCode::FilterExists, format!("'{name}' already exists"));
    }
    let filter = if blob.is_empty() {
        if capacity == 0 || capacity > engine.config.max_capacity {
            return err(
                ErrorCode::Filter,
                format!(
                    "capacity {capacity} outside 1..={}",
                    engine.config.max_capacity
                ),
            );
        }
        if !(eps.is_finite() && eps > 0.0 && eps <= 0.5) {
            return err(ErrorCode::Filter, format!("eps {eps} outside (0, 0.5]"));
        }
        if shard_bits > MAX_SHARD_BITS {
            return err(
                ErrorCode::Filter,
                format!("shard_bits {shard_bits} > {MAX_SHARD_BITS}"),
            );
        }
        match backend {
            Backend::AtomicBloom => ServedFilter::Bloom(build_atomic_bloom(capacity, eps, seed)),
            Backend::ShardedCuckoo => {
                ServedFilter::Cuckoo(build_sharded_cuckoo(capacity, eps, shard_bits, seed))
            }
            Backend::ShardedCqf => {
                ServedFilter::Cqf(build_sharded_cqf(capacity, eps, shard_bits, seed))
            }
            Backend::RegisterBloom => ServedFilter::RegisterBloom(build_sharded_register_bloom(
                capacity, eps, shard_bits, seed,
            )),
            Backend::Compacting => ServedFilter::Compacting(build_compacting(capacity, eps, seed)),
            Backend::TwoChoiceBloom => {
                ServedFilter::TwoChoice(build_sharded_two_choice(capacity, eps, shard_bits, seed))
            }
        }
    } else {
        // A pre-built filter shipped over the wire; `from_bytes` does
        // the structural validation (untrusted input). Sharded
        // backends also accept the multi-shard envelope SNAPSHOT
        // produces, rebuilding the original shard structure.
        match build_from_blob(backend, blob) {
            Ok(f) => f,
            Err(resp) => return resp,
        }
    };
    // Re-check under the write lock: a racing CREATE may have won.
    match write_lock(&engine.registry).entry(name.to_string()) {
        Entry::Occupied(_) => err(ErrorCode::FilterExists, format!("'{name}' already exists")),
        Entry::Vacant(v) => {
            v.insert(Arc::new(filter));
            FILTERS_REGISTERED.add(1);
            // Index the newcomer while still holding the registry
            // write lock (registry-before-index order). A blob
            // arrived pre-populated with keys we cannot enumerate,
            // so its leaf is saturated; a parameter build starts
            // empty and accumulates from wire INSERTs.
            let mut idx = write_lock(&engine.index);
            idx.add_filter(name);
            if !blob.is_empty() {
                idx.saturate_filter(name);
            }
            idx.publish_gauges();
            Response::Ok
        }
    }
}

/// Rebuild a [`ServedFilter`] from an untrusted blob: the inverse of
/// [`ServedFilter::snapshot_bytes`], also accepting a raw single
/// `to_bytes` image for the sharded backends (pre-envelope clients).
#[allow(clippy::result_large_err)]
fn build_from_blob(backend: Backend, blob: &[u8]) -> Result<ServedFilter, Response> {
    fn shards_from<F>(
        backend_name: &str,
        blob: &[u8],
        from: impl Fn(&[u8]) -> Result<F, SerialError>,
    ) -> Result<Sharded<F>, Response> {
        match decode_shard_envelope(blob) {
            Some(Ok(shard_blobs)) => {
                let mut shards = Vec::with_capacity(shard_blobs.len());
                for sb in &shard_blobs {
                    shards.push(from(sb).map_err(|e| {
                        err(
                            ErrorCode::Filter,
                            format!("bad {backend_name} shard blob: {e}"),
                        )
                    })?);
                }
                Ok(Sharded::from_shards(shards))
            }
            Some(Err(e)) => Err(err(
                ErrorCode::Filter,
                format!("bad {backend_name} envelope: {e}"),
            )),
            None => from(blob)
                .map(|f| Sharded::from_shards(vec![f]))
                .map_err(|e| err(ErrorCode::Filter, format!("bad {backend_name} blob: {e}"))),
        }
    }
    Ok(match backend {
        Backend::AtomicBloom => match AtomicBlockedBloomFilter::from_bytes(blob) {
            Ok(f) => ServedFilter::Bloom(f),
            Err(e) => {
                return Err(err(
                    ErrorCode::Filter,
                    format!("bad atomic-bloom blob: {e}"),
                ))
            }
        },
        Backend::ShardedCuckoo => {
            ServedFilter::Cuckoo(shards_from("cuckoo", blob, CuckooFilter::from_bytes)?)
        }
        Backend::ShardedCqf => ServedFilter::Cqf(shards_from(
            "cqf",
            blob,
            CountingQuotientFilter::from_bytes,
        )?),
        Backend::RegisterBloom => ServedFilter::RegisterBloom(shards_from(
            "register-bloom",
            blob,
            RegisterBlockedBloomFilter::from_bytes,
        )?),
        Backend::Compacting => match CompactingFilter::from_bytes(blob) {
            Ok(f) => ServedFilter::Compacting(f),
            Err(e) => return Err(err(ErrorCode::Filter, format!("bad compacting blob: {e}"))),
        },
        Backend::TwoChoiceBloom => ServedFilter::TwoChoice(shards_from(
            "two-choice-bloom",
            blob,
            TwoChoiceRegisterBloomFilter::from_bytes,
        )?),
    })
}

fn handle_insert(engine: &Engine, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(engine, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    engine.metrics.keys_processed.add(keys.len() as u64);
    if keys.len() > 1 {
        engine.metrics.batched_ops.add(keys.len() as u64);
    }
    // Index first, filter second: a concurrent MULTI_CONTAINS then
    // sees the index as a superset of every filter's contents, so a
    // candidate miss is equivalent to linearising before this insert
    // — never a false negative. (A failed filter insert below leaves
    // harmless extra index bits.)
    read_lock(&engine.index).insert_keys(name, keys);
    let sp = telemetry::trace::span("engine:insert");
    sp.annotate(keys.len() as u64, 0);
    let resp = match &*f {
        ServedFilter::Bloom(b) => {
            b.insert_batch(keys);
            Response::Ok
        }
        ServedFilter::Cuckoo(c) => match c.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
        ServedFilter::Cqf(q) => match q.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
        ServedFilter::RegisterBloom(r) => match r.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
        ServedFilter::Compacting(f) => {
            for &k in keys {
                f.insert(k);
            }
            Response::Ok
        }
        ServedFilter::TwoChoice(t) => match t.insert_batch(keys) {
            Ok(()) => Response::Ok,
            Err(e) => filter_err(e),
        },
    };
    (resp, backend)
}

fn handle_contains(engine: &Engine, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(engine, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    engine.metrics.keys_processed.add(keys.len() as u64);
    if keys.len() > 1 {
        engine.metrics.batched_ops.add(keys.len() as u64);
    }
    let sp = telemetry::trace::span("engine:probe");
    sp.annotate(keys.len() as u64, 0);
    let resp = Response::Bools(match &*f {
        ServedFilter::Bloom(b) => b.contains_batch(keys),
        ServedFilter::Cuckoo(c) => c.contains_batch(keys),
        ServedFilter::Cqf(q) => q.contains_batch(keys),
        ServedFilter::RegisterBloom(r) => r.contains_batch(keys),
        ServedFilter::Compacting(f) => f.contains_batch(keys),
        ServedFilter::TwoChoice(t) => t.contains_batch(keys),
    });
    (resp, backend)
}

fn handle_count(engine: &Engine, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(engine, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    let resp = match &*f {
        ServedFilter::Cqf(q) => {
            engine.metrics.keys_processed.add(keys.len() as u64);
            Response::Counts(q.count_batch(keys))
        }
        other => err(
            ErrorCode::Unsupported,
            format!("{} does not support COUNT", other.backend().name()),
        ),
    };
    (resp, backend)
}

fn handle_delete(engine: &Engine, name: &str, keys: &[u64]) -> (Response, Option<Backend>) {
    let f = match lookup(engine, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = Some(f.backend());
    let resp = match &*f {
        ServedFilter::Cuckoo(c) => {
            engine.metrics.keys_processed.add(keys.len() as u64);
            match c.remove_batch(keys) {
                Ok(hits) => Response::Bools(hits),
                Err(e) => filter_err(e),
            }
        }
        ServedFilter::Cqf(q) => {
            engine.metrics.keys_processed.add(keys.len() as u64);
            // Remove one occurrence per listed key; a missing key
            // (`FilterError::NotFound`) is a per-key `false`, not a
            // request failure.
            let hits = keys.iter().map(|&k| q.remove_count(k, 1).is_ok()).collect();
            Response::Bools(hits)
        }
        other => err(
            ErrorCode::Unsupported,
            format!("{} does not support DELETE", other.backend().name()),
        ),
    };
    (resp, backend)
}

fn handle_snapshot(engine: &Engine, name: &str) -> (Response, Option<Backend>) {
    let f = match lookup(engine, name) {
        Ok(f) => f,
        Err(resp) => return (resp, None),
    };
    let backend = f.backend();
    (
        Response::Blob {
            backend,
            bytes: f.snapshot_bytes(),
        },
        Some(backend),
    )
}

fn handle_forget(engine: &Engine, name: &str) -> Response {
    let mut reg = write_lock(&engine.registry);
    match reg.remove(name) {
        Some(_) => {
            FILTERS_REGISTERED.add(-1);
            let mut idx = write_lock(&engine.index);
            idx.remove_filter(name);
            idx.publish_gauges();
            Response::Ok
        }
        None => err(ErrorCode::NoSuchFilter, format!("no filter named '{name}'")),
    }
}

fn handle_multi_contains(engine: &Engine, keys: &[u64]) -> Response {
    MULTI_CONTAINS_REQUESTS.inc();
    MULTI_CONTAINS_KEYS.add(keys.len() as u64);
    engine.metrics.keys_processed.add(keys.len() as u64);
    if keys.len() > 1 {
        engine.metrics.batched_ops.add(keys.len() as u64);
    }
    let sp = telemetry::trace::span("engine:multi_contains");
    sp.annotate(keys.len() as u64, 0);
    Response::NameLists(engine.multi_contains(keys))
}

/// Most shards a single filter may render as per-shard series (a
/// 4096-shard filter would otherwise dominate the scrape).
const MAX_SHARD_SERIES: usize = 64;

/// Most filters the per-filter inventory gauges render as labelled
/// series — a 100k-tenant registry must not turn a METRICS scrape
/// into a megabyte document. The overflow count is exposed as the
/// `bb_filter_inventory_truncated` gauge so the cap is observable,
/// not silent.
const MAX_INVENTORY_SERIES: usize = 64;

/// Assemble the full METRICS exposition: every registered telemetry
/// family (filter-layer instrumentation), this server's request
/// counters and latency histogram, connection gauges, the filter
/// inventory as labelled gauges, per-shard op counts, and the
/// slow-request log rendered as `# slow ...` comment lines
/// (free-standing comments are legal Prometheus text).
pub(crate) fn render_metrics(engine: &Engine) -> String {
    let mut out = telemetry::render_registry();
    let m = &engine.metrics;
    let mut r = TextRenderer::new();
    for (name, help, v) in [
        (
            "bb_server_connections_opened_total",
            "Connections accepted.",
            m.connections_opened.get(),
        ),
        (
            "bb_server_connections_closed_total",
            "Connections fully torn down.",
            m.connections_closed.get(),
        ),
        (
            "bb_server_frames_received_total",
            "Complete frames received.",
            m.frames_received.get(),
        ),
        (
            "bb_server_responses_sent_total",
            "Response frames written.",
            m.responses_sent.get(),
        ),
        (
            "bb_server_protocol_errors_total",
            "Malformed payloads, bad versions, unknown opcodes, oversized frames.",
            m.protocol_errors.get(),
        ),
        (
            "bb_server_disconnects_mid_frame_total",
            "Peers that vanished in the middle of a frame.",
            m.disconnects_mid_frame.get(),
        ),
        (
            "bb_server_error_responses_total",
            "Requests answered with an error response.",
            m.error_responses.get(),
        ),
        (
            "bb_server_keys_processed_total",
            "Keys processed across INSERT/CONTAINS/COUNT/DELETE batches.",
            m.keys_processed.get(),
        ),
        (
            "bb_server_batched_ops_total",
            "Keys served through the batched probe kernels.",
            m.batched_ops.get(),
        ),
        (
            "bb_server_bytes_in_total",
            "Payload bytes read.",
            m.bytes_in.get(),
        ),
        (
            "bb_server_bytes_out_total",
            "Payload bytes written.",
            m.bytes_out.get(),
        ),
        (
            "bb_server_slow_requests_total",
            "Requests slower than the slow-request threshold.",
            m.slow_requests.get(),
        ),
        (
            "bb_server_accept_errors_total",
            "accept(2) calls that returned a real error.",
            m.accept_errors.get(),
        ),
    ] {
        r.counter(name, help, v);
    }
    r.gauge(
        "bb_server_open_connections",
        "Connections currently open on this server.",
        m.open_connections.get(),
    );
    r.gauge(
        "bb_server_pipelined_depth",
        "Deepest single-drain pipelining observed on any connection.",
        m.pipelined_depth.get(),
    );
    r.histogram(
        "bb_server_request_latency_ns",
        "Server-side request service time (decode to response written).",
        &m.request_latency.snapshot(),
    );

    // In live builds the Bloofi shape gauges render from the
    // telemetry registry (the bloofi crate registers them eagerly).
    // With telemetry compiled out the index still serves
    // MULTI_CONTAINS, so render its shape straight from the engine's
    // tree — the exposition keeps the same families in both modes.
    if telemetry::compiled_out() {
        let idx = read_lock(&engine.index);
        r.gauge(
            "bb_bloofi_depth",
            "Height of the Bloofi index tree (interior levels above leaves).",
            i64::from(idx.depth()),
        );
        r.gauge(
            "bb_bloofi_nodes",
            "Live nodes (leaves + interiors) in the Bloofi index tree.",
            idx.node_count() as i64,
        );
        r.gauge(
            "bb_simd_level",
            "Active SIMD dispatch tier (1=swar, 2=sse2, 3=avx2, 4=avx512, 5=neon).",
            i64::from(filter_core::simd::active_level().code()),
        );
        // No trace store exists in this build, so its drop counters
        // are structurally zero — rendered anyway so scrape
        // dashboards see the same families in both modes.
        r.counter(
            "bb_traces_dropped_total",
            "Promoted traces evicted from the bounded trace store before being fetched.",
            0,
        );
        r.counter(
            "bb_trace_spans_dropped_total",
            "Spans dropped by per-request buffer or orphan-pool bounds.",
            0,
        );
    }

    // Inventory: one labelled series per registered filter, plus
    // per-shard op counts for the sharded backends.
    r.header(
        "bb_filter_keys",
        "Distinct keys represented per served filter.",
        FamilyKind::Gauge,
    );
    let reg = read_lock(&engine.registry);
    for (name, f) in reg.iter().take(MAX_INVENTORY_SERIES) {
        r.sample(
            "bb_filter_keys",
            &[("name", name), ("backend", f.backend().name())],
            f.len() as f64,
        );
    }
    r.header(
        "bb_filter_size_bytes",
        "Heap bytes per served filter.",
        FamilyKind::Gauge,
    );
    for (name, f) in reg.iter().take(MAX_INVENTORY_SERIES) {
        r.sample(
            "bb_filter_size_bytes",
            &[("name", name), ("backend", f.backend().name())],
            f.size_in_bytes() as f64,
        );
    }
    // The cap above is load-bearing, so make it observable: how many
    // registered filters the inventory gauges omitted (0 when all
    // fit).
    r.gauge(
        "bb_filter_inventory_truncated",
        "Registered filters omitted from the per-filter inventory gauges by the series cap.",
        reg.len().saturating_sub(MAX_INVENTORY_SERIES) as i64,
    );
    r.header(
        "bb_filter_shard_ops_total",
        "Operations routed to each shard of a sharded filter.",
        FamilyKind::Counter,
    );
    for (name, f) in reg.iter().take(MAX_INVENTORY_SERIES) {
        let Some(ops) = f.shard_ops() else { continue };
        if ops.len() > MAX_SHARD_SERIES {
            continue;
        }
        for (i, &n) in ops.iter().enumerate() {
            let shard = i.to_string();
            r.sample(
                "bb_filter_shard_ops_total",
                &[("name", name), ("shard", &shard)],
                n as f64,
            );
        }
    }
    drop(reg);

    // Overwrite accounting for the bounded in-memory logs: how many
    // entries each has silently discarded since start (0 until wrap).
    r.counter(
        "bb_events_dropped",
        "Events overwritten by wrap in the global telemetry event ring.",
        telemetry::events().dropped(),
    );
    r.counter(
        "bb_slow_log_dropped",
        "Slow-request log entries overwritten by wrap.",
        engine.slowlog.dropped(),
    );

    // Slow-request log, newest last. Comment lines parse as legal
    // exposition text; scrapers that only want families skip them.
    for ev in engine.slowlog.snapshot() {
        let (op, backend, batch) = ReqInfo::unpack(ev.packed);
        let peer = ev.peer.map_or_else(|| "-".to_string(), |p| p.to_string());
        let mut line = format!(
            "slow seq={} t_us={} op={} backend={} batch={} latency_ns={} peer={}",
            ev.seq,
            ev.t_us,
            ReqInfo::op_name(op),
            backend,
            batch,
            ev.latency_ns,
            peer,
        );
        if ev.trace_id != 0 {
            line.push_str(&format!(" trace_id={:016x}", ev.trace_id));
        }
        r.comment(&line);
    }
    out.push_str(&r.finish());
    out
}

fn handle_stats(engine: &Engine) -> Response {
    let filters = read_lock(&engine.registry)
        .iter()
        .map(|(name, f)| FilterRow {
            name: name.clone(),
            backend: f.backend(),
            len: f.len() as u64,
            size_in_bytes: f.size_in_bytes() as u64,
        })
        .collect();
    Response::Stats(StatsReport {
        counters: engine.metrics.snapshot(),
        filters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_envelope_roundtrips() {
        let shards: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![0xff; 100], vec![7]];
        let env = encode_shard_envelope(&shards);
        let back = decode_shard_envelope(&env).unwrap().unwrap();
        assert_eq!(back, shards);
        // Non-envelope bytes are not misdetected.
        assert!(decode_shard_envelope(b"raw filter bytes").is_none());
        assert!(decode_shard_envelope(&[]).is_none());
        // Truncated envelopes error rather than panic.
        for cut in 4..env.len() {
            assert!(decode_shard_envelope(&env[..cut]).unwrap().is_err());
        }
        // A corrupt shard count errors.
        let mut bad = env.clone();
        bad[4..8].copy_from_slice(&3u32.to_le_bytes()); // not a power of two
        assert!(decode_shard_envelope(&bad).unwrap().is_err());
    }

    #[test]
    fn snapshot_roundtrips_preserve_answers_for_every_backend() {
        let keys: Vec<u64> = (0..2_000).map(|i| i * 2 + 1).collect();
        let probes: Vec<u64> = (0..4_000).collect();
        let engine = Engine::new(ServerConfig::default());
        let builds: Vec<(&str, ServedFilter)> = vec![
            (
                "ab",
                ServedFilter::Bloom(build_atomic_bloom(4_096, 0.01, 7)),
            ),
            (
                "ck",
                ServedFilter::Cuckoo(build_sharded_cuckoo(4_096, 0.01, 2, 7)),
            ),
            (
                "qf",
                ServedFilter::Cqf(build_sharded_cqf(4_096, 0.01, 2, 7)),
            ),
            (
                "rb",
                ServedFilter::RegisterBloom(build_sharded_register_bloom(4_096, 0.01, 2, 7)),
            ),
            (
                "cp",
                ServedFilter::Compacting(build_compacting(16_384, 0.01, 7)),
            ),
            (
                "tc",
                ServedFilter::TwoChoice(build_sharded_two_choice(4_096, 0.01, 2, 7)),
            ),
        ];
        for (name, f) in builds {
            engine.register(name, f);
            let (resp, _) = dispatch(
                &engine,
                &Request::Insert {
                    name: name.into(),
                    keys: keys.clone(),
                }
                .encode(),
            );
            assert!(matches!(resp, Response::Ok), "{name}: {resp:?}");
            // Quiesce the compacting backend before snapshotting:
            // background compaction would otherwise race the
            // snapshot/query pair below — the blob freezes the
            // point-in-time shape while the original keeps
            // compacting, and the two shapes disagree on false
            // positives.
            if let ServedFilter::Compacting(c) = &*lookup(&engine, name).unwrap() {
                c.compact_all();
            }
            let (resp, _) = dispatch(&engine, &Request::Snapshot { name: name.into() }.encode());
            let Response::Blob { backend, bytes } = resp else {
                panic!("{name}: wanted Blob, got {resp:?}");
            };
            // Rebuild under a new name from the blob and compare
            // every probe answer bit-for-bit.
            let rebuilt = format!("{name}2");
            let (resp, _) = dispatch(
                &engine,
                &Request::Create {
                    name: rebuilt.clone(),
                    backend,
                    capacity: 0,
                    eps: 0.0,
                    shard_bits: 0,
                    seed: 0,
                    blob: bytes,
                }
                .encode(),
            );
            assert!(matches!(resp, Response::Ok), "{name}: {resp:?}");
            let ask = |n: &str| {
                let (resp, _) = dispatch(
                    &engine,
                    &Request::Contains {
                        name: n.into(),
                        keys: probes.clone(),
                    }
                    .encode(),
                );
                match resp {
                    Response::Bools(b) => b,
                    other => panic!("wanted Bools, got {other:?}"),
                }
            };
            assert_eq!(ask(name), ask(&rebuilt), "{name}: snapshot changed answers");
        }
        // FORGET removes, second FORGET reports NoSuchFilter.
        let (resp, _) = dispatch(&engine, &Request::Forget { name: "ab2".into() }.encode());
        assert!(matches!(resp, Response::Ok));
        let (resp, _) = dispatch(&engine, &Request::Forget { name: "ab2".into() }.encode());
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::NoSuchFilter,
                ..
            }
        ));
    }

    /// The tree answer must be a subset of the flat scan (every
    /// match is confirmed by that filter, so any extra flat-scan
    /// entry is a pure filter false-positive the index pruned) and
    /// sorted per key.
    fn assert_tree_within_flat(tree: &[Vec<String>], flat: &[Vec<String>]) {
        assert_eq!(tree.len(), flat.len());
        for (t, f) in tree.iter().zip(flat) {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            for name in t {
                assert!(
                    f.contains(name),
                    "tree match '{name}' missing from flat scan"
                );
            }
        }
    }

    #[test]
    fn multi_contains_matches_flat_scan_and_survives_forget() {
        let engine = Engine::new(ServerConfig::default());
        let backends = [
            Backend::AtomicBloom,
            Backend::ShardedCuckoo,
            Backend::ShardedCqf,
            Backend::RegisterBloom,
            Backend::Compacting,
            Backend::TwoChoiceBloom,
        ];
        for (i, &backend) in backends.iter().enumerate() {
            let name = format!("mc-{}", backend.name());
            let (resp, _) = dispatch(
                &engine,
                &Request::Create {
                    name: name.clone(),
                    backend,
                    capacity: 4_096,
                    eps: 0.01,
                    shard_bits: 2,
                    seed: 11,
                    blob: vec![],
                }
                .encode(),
            );
            assert_eq!(resp, Response::Ok);
            let keys: Vec<u64> = (0..64).map(|j| (i as u64) * 100_000 + j).collect();
            let (resp, _) = dispatch(&engine, &Request::Insert { name, keys }.encode());
            assert_eq!(resp, Response::Ok);
        }
        let probes: Vec<u64> = (0..600_000).step_by(997).collect();
        let (resp, info) = dispatch(
            &engine,
            &Request::MultiContains {
                keys: probes.clone(),
            }
            .encode(),
        );
        assert_eq!(info.op, 10);
        assert_eq!(info.batch, probes.len() as u32);
        let Response::NameLists(lists) = resp else {
            panic!("wanted NameLists, got {resp:?}")
        };
        // The tree prunes filter false-positives the index never
        // proposed (a strict improvement over the flat scan), so the
        // oracle relation is subset + zero false negatives, not
        // equality.
        assert_tree_within_flat(&lists, &engine.multi_contains_flat(&probes));
        // Every inserted key names its own filter (no false negative).
        for (i, &backend) in backends.iter().enumerate() {
            let name = format!("mc-{}", backend.name());
            let keys: Vec<u64> = (0..64).map(|j| (i as u64) * 100_000 + j).collect();
            for names in engine.multi_contains(&keys) {
                assert!(names.contains(&name), "false negative in {name}");
            }
        }
        let (resp, _) = dispatch(
            &engine,
            &Request::MultiContains {
                keys: vec![0, 100_001, 500_063],
            }
            .encode(),
        );
        let Response::NameLists(lists) = resp else {
            panic!("wanted NameLists")
        };
        assert!(lists[0].contains(&"mc-atomic-bloom".to_string()));
        assert!(lists[1].contains(&"mc-sharded-cuckoo".to_string()));
        assert!(lists[2].contains(&"mc-two-choice-bloom".to_string()));
        // Forget drops the filter from the answers too.
        let (resp, _) = dispatch(
            &engine,
            &Request::Forget {
                name: "mc-atomic-bloom".into(),
            }
            .encode(),
        );
        assert_eq!(resp, Response::Ok);
        assert!(!read_lock(&engine.index).contains_filter("mc-atomic-bloom"));
        let after = engine.multi_contains(&probes);
        assert_tree_within_flat(&after, &engine.multi_contains_flat(&probes));
        assert!(after
            .iter()
            .all(|l| !l.contains(&"mc-atomic-bloom".to_string())));
        // Surviving filters still resolve their inserted keys.
        assert!(engine.multi_contains(&[100_001])[0].contains(&"mc-sharded-cuckoo".to_string()));
    }

    #[test]
    fn blob_created_filters_are_saturated_and_rebuild_keeps_parity() {
        let engine = Engine::new(ServerConfig::default());
        // Ship a pre-built filter as a blob: the server cannot
        // enumerate its keys, so the index must treat it as
        // match-anything and let the filter itself confirm.
        let pre = build_atomic_bloom(1_024, 0.01, 3);
        for k in 500..600u64 {
            pre.insert(k);
        }
        let blob = pre.to_bytes();
        let (resp, _) = dispatch(
            &engine,
            &Request::Create {
                name: "shipped".into(),
                backend: Backend::AtomicBloom,
                capacity: 0,
                eps: 0.0,
                shard_bits: 0,
                seed: 0,
                blob,
            }
            .encode(),
        );
        assert_eq!(resp, Response::Ok);
        // Direct registration has unknown keys too.
        let direct = build_atomic_bloom(1_024, 0.01, 5);
        direct.insert(42);
        assert!(engine.register("direct", ServedFilter::Bloom(direct)));
        let probes: Vec<u64> = (0..1_000).collect();
        assert_eq!(
            engine.multi_contains(&probes),
            engine.multi_contains_flat(&probes)
        );
        assert!(engine.multi_contains(&[550])[0].contains(&"shipped".to_string()));
        assert!(engine.multi_contains(&[42])[0].contains(&"direct".to_string()));
        // A bulk rebuild keeps the same answers (all leaves
        // saturated: pure candidate generation, filters confirm).
        engine.rebuild_index();
        read_lock(&engine.index).check_invariants();
        assert_eq!(
            engine.multi_contains(&probes),
            engine.multi_contains_flat(&probes)
        );
    }
}
