//! The event-driven filter server: every connection served from one
//! nonblocking readiness loop ([`eventloop::Poller`] — raw-syscall
//! epoll on x86_64 Linux, the scan fallback elsewhere).
//!
//! # Why a second transport
//!
//! The threaded server pins one worker per live connection, so its
//! concurrency is the pool size and each idle connection costs a
//! blocked thread. The evented server inverts that: one loop thread
//! owns every socket, sleeping in `epoll_wait` until some socket has
//! bytes, so thousands of mostly-idle connections cost one thread and
//! a few KB of buffers each — the classic C10K argument, applied to a
//! filter sidecar whose requests are microseconds long (dispatching
//! inline on the loop thread is *cheaper* than handing off to a pool
//! for work this small).
//!
//! # Pipelining
//!
//! Each connection keeps a rolling inbound buffer. One readiness
//! drain reads until `WouldBlock`, then dispatches **every** complete
//! frame in the buffer, appending responses in request order to a
//! per-connection outbound buffer — many in-flight frames per socket,
//! responses strictly ordered. Frames are parsed in place
//! (`&ibuf[start..start+len]` straight into the engine's dispatch) —
//! no per-frame allocation or copy on the request path.
//!
//! # Parity
//!
//! Both servers funnel every payload through `engine::dispatch` and
//! count through the same [`crate::metrics::ServerMetrics`] in the
//! same order, so for any scripted request sequence the responses and
//! the deterministic STATS counters are bit-identical across
//! transports (`tests/service_e2e.rs` asserts exactly this). The
//! drain contract is also the threaded one: shutdown stops accepting,
//! finishes writing responses already queued, and closes — buffered
//! but undispatched frames are dropped, just as the threaded worker
//! drops frames it has not started reading.
//!
//! # Safety
//!
//! This module is pure safe code (`service` forbids unsafe); all fd
//! handling lives behind `eventloop`'s audited syscall island. The
//! loop tolerates spurious readiness by construction — every read and
//! write runs until `WouldBlock` — which is exactly the contract the
//! scan-fallback poller needs, and why `BEYOND_BLOOM_FORCE_POLL=1`
//! runs the full e2e suite unchanged.

use crate::engine::{dispatch, render_metrics, Engine, ServerConfig};
use crate::proto::{ErrorCode, Response, FLAG_TRACE};
use eventloop::{net, os_fd, BackendKind, Event, Interest, Poller, Token};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use telemetry::trace::TraceContext;

/// Token 0 is the listener; connection n lives at token n + 1.
const LISTENER: Token = Token(0);

/// Per-connection state: the socket plus rolling I/O buffers.
struct Conn {
    stream: TcpStream,
    /// Peer address, cached at accept for the slow-request log.
    peer: Option<SocketAddr>,
    /// Inbound bytes not yet parsed into frames. `start` is the parse
    /// cursor; `ibuf[start..]` is unconsumed.
    ibuf: Vec<u8>,
    start: usize,
    /// Responses serialized and not yet fully written. `osent` is the
    /// flushed prefix.
    obuf: Vec<u8>,
    osent: usize,
    /// Whether the poller currently watches this fd for writability.
    want_write: bool,
    /// Close once `obuf` drains (protocol error or peer EOF).
    close_after_flush: bool,
    /// Peer sent EOF on a clean frame boundary.
    peer_closed: bool,
    /// Last time a complete frame arrived (idle-deadline clock — the
    /// same "frames, not bytes" progress rule as the threaded server).
    last_frame: Instant,
}

/// An event-driven [`FilterServer`](crate::server::FilterServer)
/// equivalent: same engine, same wire protocol, same drain semantics,
/// one readiness loop instead of a thread pool.
pub struct EventedFilterServer {
    engine: Arc<Engine>,
    addr: SocketAddr,
    backend: BackendKind,
    looper: Option<JoinHandle<()>>,
}

impl EventedFilterServer {
    /// Bind `addr` (port 0 for ephemeral) and start the loop thread.
    /// Takes the same [`ServerConfig`] as the threaded server
    /// (`workers`/`backlog` are ignored; the loop serves everyone).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        net::set_reuseaddr(&listener)?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let backend = poller.kind();
        crate::engine::register_all_layers();
        let engine = Arc::new(Engine::new(config));
        let looper = {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("filter-evented".into())
                .spawn(move || event_loop(&engine, listener, poller))
                .expect("spawn evented loop")
        };
        Ok(EventedFilterServer {
            engine,
            addr: local,
            backend,
            looper: Some(looper),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which readiness backend the loop runs on (epoll or the
    /// portable scan fallback).
    pub fn poll_backend(&self) -> BackendKind {
        self.backend
    }

    /// Racing snapshot of the server metrics (same data STATS serves).
    pub fn metrics(&self) -> &crate::metrics::ServerMetrics {
        self.engine.metrics()
    }

    /// Install a filter directly, bypassing the wire CREATE. Returns
    /// `false` when the name is already taken.
    pub fn register(&self, name: &str, filter: crate::engine::ServedFilter) -> bool {
        self.engine.register(name, filter)
    }

    /// Render the METRICS exposition in-process.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.engine)
    }

    /// Stop accepting, flush queued responses, close every
    /// connection, join the loop thread. The loop observes the flag
    /// within one readiness-wait tick, so no wake-up connection is
    /// needed.
    pub fn shutdown(mut self) {
        self.engine.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.looper.take() {
            let _ = h.join();
        }
    }
}

/// How much to read per `read()` call while draining a socket.
const READ_CHUNK: usize = 64 * 1024;

fn event_loop(engine: &Engine, listener: TcpListener, mut poller: Poller) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: VecDeque<usize> = VecDeque::new();
    let mut events: Vec<Event> = Vec::new();
    if poller
        .register(os_fd(&listener), LISTENER, Interest::READABLE)
        .is_err()
    {
        return;
    }
    let tick = engine.config.read_timeout;
    loop {
        if engine.stopping() {
            break;
        }
        if poller.wait(&mut events, Some(tick)).is_err() {
            break;
        }
        for ev in &events {
            if ev.token == LISTENER {
                accept_ready(engine, &listener, &mut poller, &mut conns, &mut free);
            } else {
                let idx = ev.token.0 - 1;
                // A slot freed earlier in this same batch can leave a
                // stale event behind; with level-triggered readiness
                // and drain-until-WouldBlock, skipping or spuriously
                // servicing a reused slot are both harmless.
                let mut closed = false;
                if let Some(Some(conn)) = conns.get_mut(idx) {
                    if ev.readable || ev.hangup {
                        closed = conn_readable(engine, conn);
                    }
                    if !closed && (ev.writable || !conn.obuf.is_empty()) {
                        closed = conn_flush(conn, &mut poller, ev.token);
                    }
                }
                if closed {
                    close_conn(engine, &mut poller, &mut conns, &mut free, idx);
                }
            }
        }
        // Idle sweep: close connections that have gone too long
        // without completing a frame. Dribbled bytes don't reset the
        // clock — only whole frames do (slow-loris backstop).
        if let Some(idle) = engine.config.idle_timeout {
            for idx in 0..conns.len() {
                let expired = match &conns[idx] {
                    Some(c) => c.last_frame.elapsed() >= idle,
                    None => false,
                };
                if expired {
                    close_conn(engine, &mut poller, &mut conns, &mut free, idx);
                }
            }
        }
    }
    // Drain: stop accepting (loop exited), finish writing whatever is
    // already queued with a bounded blocking flush, close everything.
    poller.deregister(os_fd(&listener), LISTENER).ok();
    for idx in 0..conns.len() {
        if let Some(conn) = &mut conns[idx] {
            if conn.osent < conn.obuf.len() {
                // Bounded blocking flush (bytes/counters were already
                // accounted at queue time).
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn
                    .stream
                    .set_write_timeout(Some(tick.max(std::time::Duration::from_millis(100))));
                let pending = std::mem::take(&mut conn.obuf);
                let _ = conn.stream.write_all(&pending[conn.osent..]);
                conn.osent = 0;
            }
        }
        if conns[idx].is_some() {
            close_conn(engine, &mut poller, &mut conns, &mut free, idx);
        }
    }
}

/// Accept until `WouldBlock`, registering each new socket.
fn accept_ready(
    engine: &Engine,
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut Vec<Option<Conn>>,
    free: &mut VecDeque<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if engine.stopping() {
                    drop(stream);
                    return;
                }
                if stream.set_nonblocking(true).is_err() {
                    engine.metrics.accept_errors.inc();
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let idx = free.pop_front().unwrap_or_else(|| {
                    conns.push(None);
                    conns.len() - 1
                });
                let token = Token(idx + 1);
                if poller
                    .register(os_fd(&stream), token, Interest::READABLE)
                    .is_err()
                {
                    engine.metrics.accept_errors.inc();
                    free.push_back(idx);
                    continue;
                }
                engine.metrics.connections_opened.inc();
                engine.metrics.open_connections.add(1);
                let peer = stream.peer_addr().ok();
                conns[idx] = Some(Conn {
                    stream,
                    peer,
                    ibuf: Vec::new(),
                    start: 0,
                    obuf: Vec::new(),
                    osent: 0,
                    want_write: false,
                    close_after_flush: false,
                    peer_closed: false,
                    last_frame: Instant::now(),
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                engine.metrics.accept_errors.inc();
                return;
            }
        }
    }
}

/// Drain the socket, dispatch every complete frame, queue responses.
/// Returns `true` when the connection should be closed immediately.
fn conn_readable(engine: &Engine, conn: &mut Conn) -> bool {
    let m = &engine.metrics;
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => conn.ibuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }

    // Dispatch every complete frame in arrival order; this count is
    // the pipelining depth of the drain.
    let mut depth: i64 = 0;
    while !conn.close_after_flush {
        let avail = conn.ibuf.len() - conn.start;
        if avail < 4 {
            break;
        }
        let word = u32::from_le_bytes(
            conn.ibuf[conn.start..conn.start + 4]
                .try_into()
                .expect("4-byte slice"),
        );
        // The trace flag is masked off before the size check, exactly
        // as `FrameReader` does: a traced frame must not look
        // oversized, and an untraced oversized frame must not look
        // traced.
        let traced = word & FLAG_TRACE != 0;
        let len = word & !FLAG_TRACE;
        if len > engine.config.max_frame {
            // Same contract as the threaded path: answer with the
            // reason, then close — the unread body defeats resync.
            m.protocol_errors.inc();
            queue_response(
                engine,
                conn,
                &Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!(
                        "frame length {len} exceeds limit {}",
                        engine.config.max_frame
                    ),
                },
            );
            conn.close_after_flush = true;
            break;
        }
        if traced && (len as usize) < TraceContext::WIRE_LEN {
            m.protocol_errors.inc();
            queue_response(
                engine,
                conn,
                &Response::Error {
                    code: ErrorCode::BadFrame,
                    message: "traced frame shorter than its trace context".into(),
                },
            );
            conn.close_after_flush = true;
            break;
        }
        if avail < 4 + len as usize {
            break; // partial frame: wait for more bytes
        }
        let frame_end = conn.start + 4 + len as usize;
        // Strip the trace context off the front of the counted body;
        // bytes_in counts the post-strip payload, keeping the
        // deterministic counters identical to the threaded transport.
        let ctx = if traced {
            TraceContext::decode(&conn.ibuf[conn.start + 4..frame_end])
        } else {
            None
        };
        let payload_start = conn.start + 4 + if traced { TraceContext::WIRE_LEN } else { 0 };
        m.frames_received.inc();
        m.bytes_in.add((frame_end - payload_start) as u64);
        let t0 = Instant::now();
        let req_trace = telemetry::trace::begin("server:request", ctx);
        // In-place dispatch: the payload slice borrows the inbound
        // buffer directly.
        let (resp, info) = dispatch(engine, &conn.ibuf[payload_start..frame_end]);
        let error = matches!(resp, Response::Error { .. });
        queue_response(engine, conn, &resp);
        let dt = t0.elapsed();
        let slow = dt >= engine.config.slow_request_threshold;
        // Only a slow request reads (and, for an unsampled one,
        // mints) its trace id — the fast path stays free of id work.
        engine.record_request(
            dt,
            info,
            conn.peer,
            if slow { req_trace.trace_id() } else { 0 },
        );
        req_trace.finish_timed(dt, slow, error);
        conn.start = frame_end;
        conn.last_frame = Instant::now();
        depth += 1;
        if engine.stopping() {
            // Drain contract: finish nothing more once stopping; the
            // shutdown path flushes what is already queued.
            break;
        }
    }
    if depth > 0 {
        m.raise_pipelined_depth(depth);
    }

    // Compact the consumed prefix so the buffer doesn't grow without
    // bound across drains.
    if conn.start == conn.ibuf.len() {
        conn.ibuf.clear();
        conn.start = 0;
    } else if conn.start > 4096 {
        conn.ibuf.drain(..conn.start);
        conn.start = 0;
    }

    if conn.peer_closed {
        if conn.ibuf.len() - conn.start > 0 && !conn.close_after_flush {
            // EOF with a partial frame buffered: the peer vanished
            // mid-frame.
            m.disconnects_mid_frame.inc();
            return true;
        }
        // Clean boundary: deliver queued responses, then close.
        conn.close_after_flush = true;
    }
    false
}

/// Serialize a response into the connection's outbound buffer,
/// counting exactly as the threaded `write_response` does (queueing
/// into the kernel-bound buffer is this transport's "written").
fn queue_response(engine: &Engine, conn: &mut Conn, resp: &Response) {
    let m = &engine.metrics;
    if matches!(resp, Response::Error { .. }) {
        m.error_responses.inc();
    }
    let bytes = resp.encode();
    conn.obuf
        .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    conn.obuf.extend_from_slice(&bytes);
    m.responses_sent.inc();
    m.bytes_out.add(bytes.len() as u64);
}

/// Write pending output until done or `WouldBlock`, managing the
/// writable-interest registration. Returns `true` when the connection
/// should close (flush finished after a close was requested, or the
/// write errored).
fn conn_flush(conn: &mut Conn, poller: &mut Poller, token: Token) -> bool {
    while conn.osent < conn.obuf.len() {
        match conn.stream.write(&conn.obuf[conn.osent..]) {
            Ok(0) => return true,
            Ok(n) => conn.osent += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if conn.osent == conn.obuf.len() {
        conn.obuf.clear();
        conn.osent = 0;
        if conn.want_write {
            conn.want_write = false;
            let _ = poller.modify(os_fd(&conn.stream), token, Interest::READABLE);
        }
        return conn.close_after_flush;
    }
    // Output still pending: make sure the poller wakes us to finish.
    if !conn.want_write {
        conn.want_write = true;
        let _ = poller.modify(os_fd(&conn.stream), token, Interest::BOTH);
    }
    false
}

fn close_conn(
    engine: &Engine,
    poller: &mut Poller,
    conns: &mut [Option<Conn>],
    free: &mut VecDeque<usize>,
    idx: usize,
) {
    if let Some(conn) = conns[idx].take() {
        let _ = poller.deregister(os_fd(&conn.stream), Token(idx + 1));
        drop(conn);
        engine.metrics.connections_closed.inc();
        engine.metrics.open_connections.add(-1);
        free.push_back(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::FilterClient;
    use crate::proto::{Backend, FrameEvent, FrameReader};
    use std::time::Duration;

    fn quick_config() -> ServerConfig {
        ServerConfig {
            read_timeout: Duration::from_millis(10),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serve_create_insert_query_shutdown() {
        let server = EventedFilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        c.create("t", Backend::AtomicBloom, 10_000, 0.01, 0, 7)
            .unwrap();
        c.insert("t", &[1, 2, 3]).unwrap();
        let got = c.contains("t", &[1, 2, 3, 999_999]).unwrap();
        assert_eq!(&got[..3], &[true, true, true]);
        let stats = c.stats().unwrap();
        assert_eq!(stats.filters.len(), 1);
        assert!(stats.counters.frames_received >= 3);
        assert_eq!(stats.counters.open_connections, 1);
        drop(c);
        server.shutdown();
    }

    #[test]
    fn pipelined_frames_answered_in_order() {
        use crate::proto::{write_frame, Request};
        let server = EventedFilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        c.create("p", Backend::ShardedCqf, 10_000, 0.01, 2, 7)
            .unwrap();
        drop(c);
        // Raw pipelining: many request frames in one burst, no reads
        // in between, then collect the responses in order. TCP may
        // deliver a burst in pieces under load (one frame per
        // readable event keeps the watermark at 1), so retry until a
        // burst lands in one drain — one attempt almost always does.
        let mut attempts = 0;
        while server.metrics().pipelined_depth.get() <= 1 {
            attempts += 1;
            assert!(attempts <= 20, "no burst ever drained as a pipeline");
            let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
            let n = 32;
            let mut wire = Vec::new();
            for i in 0..n {
                let req = Request::Insert {
                    name: "p".into(),
                    keys: vec![i, i + 1_000],
                };
                write_frame(&mut wire, &req.encode()).unwrap();
            }
            let probe = Request::Count {
                name: "p".into(),
                keys: (0..n).collect(),
            };
            write_frame(&mut wire, &probe.encode()).unwrap();
            stream.write_all(&wire).unwrap();
            let mut frames =
                FrameReader::new(stream.try_clone().unwrap(), crate::proto::DEFAULT_MAX_FRAME);
            for _ in 0..n {
                match frames.read_frame().unwrap() {
                    FrameEvent::Frame(p, _) => {
                        assert_eq!(Response::decode(&p).unwrap(), Response::Ok)
                    }
                    FrameEvent::Closed => panic!("closed early"),
                }
            }
            match frames.read_frame().unwrap() {
                FrameEvent::Frame(p, _) => match Response::decode(&p).unwrap() {
                    Response::Counts(c) => assert!(c.iter().all(|&v| v >= 1)),
                    other => panic!("wanted Counts, got {other:?}"),
                },
                FrameEvent::Closed => panic!("closed early"),
            }
        }
        assert!(server.metrics().pipelined_depth.get() > 1);
        server.shutdown();
    }

    #[test]
    fn oversized_prefix_answered_then_closed() {
        let server = EventedFilterServer::bind("127.0.0.1:0", quick_config()).unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 64]).unwrap();
        let mut frames =
            FrameReader::new(stream.try_clone().unwrap(), crate::proto::DEFAULT_MAX_FRAME);
        match frames.read_frame().unwrap() {
            FrameEvent::Frame(p, _) => match Response::decode(&p).unwrap() {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
                other => panic!("wanted Error, got {other:?}"),
            },
            FrameEvent::Closed => panic!("closed without answering"),
        }
        // Then the server closes.
        assert!(matches!(
            frames.read_frame(),
            Ok(FrameEvent::Closed) | Err(_)
        ));
        server.shutdown();
    }
}
