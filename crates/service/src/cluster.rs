//! Consistent-hash cluster mode: one logical filter namespace routed
//! across N independent filter servers.
//!
//! Each server process stays exactly what it was — a single-node
//! engine with a private registry. The [`ClusterClient`] layers a
//! consistent-hash ring (virtual nodes, 64 per server by default)
//! over the set of server addresses and routes every named-filter
//! request to the name's owner. No server knows about any other: the
//! cluster is a pure client-side construct, which is how memcached
//! deployments scaled before servers grew gossip protocols.
//!
//! # Why consistent hashing
//!
//! With `hash(name) % N` routing, changing N remaps nearly every
//! name. On the ring, a node's arrival or departure only remaps the
//! ring arcs adjacent to its virtual points — an expected `K/N`
//! fraction of the K filters — so elastic membership changes ship
//! `K/N` snapshots, not K ([`ClusterClient::add_node`] asserts this
//! "only affected arcs move" property in tests).
//!
//! # Migration
//!
//! Moving a filter is three wire calls built from existing protocol
//! pieces: SNAPSHOT on the old owner (`to_bytes`/multi-shard
//! envelope), blob-CREATE on the new owner (`from_bytes`), FORGET on
//! the old owner. The blob preserves shard structure and per-shard
//! seeds, so a migrated filter answers every probe bit-identically to
//! the original. [`ClusterClient::replicate`] ships the same snapshot
//! to ring successors instead, for read replicas.

use crate::client::{ClientError, FilterClient};
use crate::metrics::StatsReport;
use crate::proto::{Backend, Request, Response};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use telemetry::trace::{SpanRecord, Trace};

/// Virtual points each node contributes to the ring. More points →
/// smoother load split and finer-grained remapping at membership
/// changes, at O(vnodes · nodes) ring-build cost.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a over bytes, then a splitmix64-style finalizer. FNV alone
/// clusters nearby keys; the avalanche spreads ring points uniformly.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ h >> 31
}

/// A consistent-hash ring over node indices. Pure data structure —
/// no sockets — so routing properties are unit-testable in isolation.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, node index)`, sorted by position.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build a ring with `vnodes` virtual points per node. Points are
    /// derived from each node's address string, so every client that
    /// knows the same membership builds the same ring.
    pub fn build(addrs: &[SocketAddr], vnodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(addrs.len() * vnodes);
        for (i, addr) in addrs.iter().enumerate() {
            let base = addr.to_string();
            for v in 0..vnodes {
                points.push((ring_hash(format!("{base}#{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The node index owning `name`: the first ring point clockwise
    /// from the name's hash (wrapping at the top).
    pub fn owner(&self, name: &str) -> usize {
        self.walk(name).next().expect("ring has at least one point")
    }

    /// Distinct node indices in ring order starting at `name`'s owner
    /// — the owner first, then the replica candidates.
    pub fn successors(&self, name: &str) -> Vec<usize> {
        let mut seen = Vec::new();
        for idx in self.walk(name) {
            if !seen.contains(&idx) {
                seen.push(idx);
            }
        }
        seen
    }

    /// Walk ring points clockwise from `name`'s hash, yielding node
    /// indices (with repeats; one full lap).
    fn walk(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        let h = ring_hash(name.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        (0..n).map(move |i| self.points[(start + i) % n].1)
    }
}

/// Why a cluster call failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster has no nodes (or the last node was removed).
    NoNodes,
    /// The named node is not a cluster member.
    UnknownNode(SocketAddr),
    /// The node is already a member.
    DuplicateNode(SocketAddr),
    /// A wire call to a member failed.
    Client(ClientError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster has no nodes"),
            ClusterError::UnknownNode(a) => write!(f, "no cluster node at {a}"),
            ClusterError::DuplicateNode(a) => write!(f, "node {a} already in cluster"),
            ClusterError::Client(e) => write!(f, "cluster member call failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ClientError> for ClusterError {
    fn from(e: ClientError) -> Self {
        ClusterError::Client(e)
    }
}

/// One filter moved by a membership change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Filter name.
    pub name: String,
    /// Backend family (from the snapshot).
    pub backend: Backend,
    /// Node it left.
    pub from: SocketAddr,
    /// Node it landed on.
    pub to: SocketAddr,
}

/// What a node add/remove actually shipped.
#[derive(Debug, Clone, Default)]
pub struct MigrationReport {
    /// Filters re-homed (snapshot → blob-CREATE → forget).
    pub moved: Vec<Migration>,
    /// Filters whose owner arc was untouched and stayed put.
    pub retained: usize,
}

/// A trace whose client-side spans are already closed but whose
/// server-side spans have not been harvested yet (the in-between
/// state of [`ClusterClient::trace_route_begin`] /
/// [`ClusterClient::trace_collect`]).
#[derive(Debug)]
pub struct PendingTrace {
    /// The forced root's trace id — the join key for server spans.
    pub trace_id: u64,
    /// Client-side spans: the root plus one `rpc:{addr}` per call.
    pub spans: Vec<SpanRecord>,
    /// Traced RPCs issued — collection retries until this many
    /// `server:request` spans have been harvested (or a deadline).
    pub expected_rpcs: usize,
}

struct Node {
    addr: SocketAddr,
    conn: Option<FilterClient>,
}

/// A client-side cluster: consistent-hash routing of named filters
/// across independent filter servers, with snapshot-shipping
/// migration on membership changes.
pub struct ClusterClient {
    nodes: Vec<Node>,
    ring: HashRing,
    vnodes: usize,
}

impl ClusterClient {
    /// Assemble a cluster over running servers (connections open
    /// lazily, on first use of each node).
    pub fn new(addrs: Vec<SocketAddr>) -> Result<ClusterClient, ClusterError> {
        Self::with_vnodes(addrs, DEFAULT_VNODES)
    }

    /// [`ClusterClient::new`] with an explicit virtual-node count.
    pub fn with_vnodes(
        addrs: Vec<SocketAddr>,
        vnodes: usize,
    ) -> Result<ClusterClient, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let ring = HashRing::build(&addrs, vnodes.max(1));
        Ok(ClusterClient {
            nodes: addrs
                .into_iter()
                .map(|addr| Node { addr, conn: None })
                .collect(),
            ring,
            vnodes: vnodes.max(1),
        })
    }

    /// Current member addresses, in join order.
    pub fn node_addrs(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(|n| n.addr).collect()
    }

    /// The address that owns `name` under the current ring.
    pub fn owner_addr(&self, name: &str) -> SocketAddr {
        self.nodes[self.ring.owner(name)].addr
    }

    /// Owner first, then replica-candidate addresses in ring order.
    pub fn successor_addrs(&self, name: &str) -> Vec<SocketAddr> {
        self.ring
            .successors(name)
            .into_iter()
            .map(|i| self.nodes[i].addr)
            .collect()
    }

    fn conn(&mut self, idx: usize) -> Result<&mut FilterClient, ClusterError> {
        let node = &mut self.nodes[idx];
        if node.conn.is_none() {
            node.conn = Some(FilterClient::connect(node.addr).map_err(ClientError::Io)?);
        }
        Ok(node.conn.as_mut().expect("just connected"))
    }

    fn conn_for(&mut self, name: &str) -> Result<&mut FilterClient, ClusterError> {
        let idx = self.ring.owner(name);
        self.conn(idx)
    }

    /// CREATE on the name's owner.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        name: &str,
        backend: Backend,
        capacity: u64,
        eps: f64,
        shard_bits: u32,
        seed: u64,
    ) -> Result<(), ClusterError> {
        Ok(self
            .conn_for(name)?
            .create(name, backend, capacity, eps, shard_bits, seed)?)
    }

    /// INSERT routed to the name's owner.
    pub fn insert(&mut self, name: &str, keys: &[u64]) -> Result<(), ClusterError> {
        Ok(self.conn_for(name)?.insert(name, keys)?)
    }

    /// CONTAINS routed to the name's owner.
    pub fn contains(&mut self, name: &str, keys: &[u64]) -> Result<Vec<bool>, ClusterError> {
        Ok(self.conn_for(name)?.contains(name, keys)?)
    }

    /// COUNT routed to the name's owner.
    pub fn count(&mut self, name: &str, keys: &[u64]) -> Result<Vec<u64>, ClusterError> {
        Ok(self.conn_for(name)?.count(name, keys)?)
    }

    /// DELETE routed to the name's owner.
    pub fn delete(&mut self, name: &str, keys: &[u64]) -> Result<Vec<bool>, ClusterError> {
        Ok(self.conn_for(name)?.delete(name, keys)?)
    }

    /// STATS from every member, keyed by address (the union is the
    /// cluster's filter inventory).
    pub fn stats_all(&mut self) -> Result<BTreeMap<SocketAddr, StatsReport>, ClusterError> {
        let mut out = BTreeMap::new();
        for idx in 0..self.nodes.len() {
            let addr = self.nodes[idx].addr;
            out.insert(addr, self.conn(idx)?.stats()?);
        }
        Ok(out)
    }

    /// MULTI_CONTAINS across the whole cluster: every node owns a
    /// disjoint slice of the name space, so the query fans out to
    /// each node's Bloofi index and the per-key name lists are
    /// merged (sorted, deduplicated — replicas of a filter on
    /// several nodes still answer once). `out[i]` answers `keys[i]`
    /// over every filter registered anywhere in the cluster.
    pub fn multi_contains(&mut self, keys: &[u64]) -> Result<Vec<Vec<String>>, ClusterError> {
        let mut merged: Vec<Vec<String>> = vec![Vec::new(); keys.len()];
        for idx in 0..self.nodes.len() {
            let lists = self.conn(idx)?.multi_contains(keys)?;
            for (m, names) in merged.iter_mut().zip(lists) {
                m.extend(names);
            }
        }
        for m in &mut merged {
            m.sort_unstable();
            m.dedup();
        }
        Ok(merged)
    }

    /// Trace one routed request across the whole cluster: probe
    /// `keys` on every node (a cluster-wide MULTI_CONTAINS, each RPC
    /// carrying the trace context on the wire), then fetch each
    /// node's completed traces and merge the spans that belong to
    /// this trace into one cross-process [`Trace`]. Convenience
    /// wrapper over [`ClusterClient::trace_route_begin`] +
    /// [`ClusterClient::trace_collect`].
    pub fn trace_route(&mut self, key: u64) -> Result<Trace, ClusterError> {
        let pending = self.trace_route_begin(key, None)?;
        self.trace_collect(pending)
    }

    /// First half of [`ClusterClient::trace_route`]: run the traced
    /// RPCs and return the client-side spans, without collecting the
    /// server-side halves yet. The split exists so callers can wait
    /// for asynchronous server work linked to the trace (background
    /// compaction after a traced INSERT seals a tier) before
    /// harvesting. `insert_into`, when set, first sends a traced
    /// INSERT of `key` into that filter on its owner.
    pub fn trace_route_begin(
        &mut self,
        key: u64,
        insert_into: Option<&str>,
    ) -> Result<PendingTrace, ClusterError> {
        let guard = telemetry::trace::begin_forced("cluster:trace_route");
        let result = self.trace_route_rpcs(key, insert_into);
        // Close the root even on error so the thread-local slot is
        // never left dangling.
        let (trace_id, spans) = guard.finish_collect();
        result?;
        Ok(PendingTrace {
            trace_id,
            spans,
            expected_rpcs: usize::from(insert_into.is_some()) + self.nodes.len(),
        })
    }

    /// The traced RPC fan-out inside the root span: optional INSERT
    /// to the key's filter owner, then MULTI_CONTAINS to every node.
    fn trace_route_rpcs(
        &mut self,
        key: u64,
        insert_into: Option<&str>,
    ) -> Result<(), ClusterError> {
        if let Some(name) = insert_into {
            let idx = self.ring.owner(name);
            let addr = self.nodes[idx].addr;
            let sp = telemetry::trace::span(format!("rpc:{addr}"));
            sp.annotate(1, 0);
            let ctx = telemetry::trace::current_context(true);
            let resp = self.conn(idx)?.call_traced(
                &Request::Insert {
                    name: name.to_string(),
                    keys: vec![key],
                },
                ctx,
            )?;
            if let Response::Error { code, message } = resp {
                return Err(ClusterError::Client(ClientError::Remote { code, message }));
            }
        }
        for idx in 0..self.nodes.len() {
            let addr = self.nodes[idx].addr;
            let sp = telemetry::trace::span(format!("rpc:{addr}"));
            sp.annotate(1, 0);
            let ctx = telemetry::trace::current_context(true);
            let resp = self
                .conn(idx)?
                .call_traced(&Request::MultiContains { keys: vec![key] }, ctx)?;
            if let Response::Error { code, message } = resp {
                return Err(ClusterError::Client(ClientError::Remote { code, message }));
            }
        }
        Ok(())
    }

    /// Second half of [`ClusterClient::trace_route`]: drain every
    /// node's trace store, keep the spans whose `trace_id` matches,
    /// and merge them with the client-side spans into one trace
    /// ordered by start time. Servers promote a request's trace just
    /// after writing its response, so the last RPC's spans can lag
    /// the client by a scheduling beat — collection retries (briefly)
    /// until every traced RPC has contributed its `server:request`
    /// span.
    pub fn trace_collect(&mut self, pending: PendingTrace) -> Result<Trace, ClusterError> {
        let PendingTrace {
            trace_id,
            mut spans,
            expected_rpcs,
        } = pending;
        if trace_id == 0 {
            // Tracing is compiled out or switched off: nothing was
            // recorded anywhere; skip the collection round-trips.
            return Ok(Trace { trace_id, spans });
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            for idx in 0..self.nodes.len() {
                for trace in self.conn(idx)?.traces()? {
                    if trace.trace_id == trace_id {
                        spans.extend(trace.spans);
                    }
                }
            }
            let served = spans.iter().filter(|s| s.name == "server:request").count();
            if served >= expected_rpcs || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        spans.sort_by_key(|s: &SpanRecord| s.start_us);
        Ok(Trace { trace_id, spans })
    }

    /// Ship `name`'s snapshot to its next `copies` ring successors as
    /// same-name read replicas (blob-CREATE under the identical
    /// name on other nodes — registries are per-node, so names don't
    /// collide). Returns the replica addresses. Replicas are static
    /// copies: they serve reads if the owner is lost, but do not see
    /// later inserts.
    pub fn replicate(
        &mut self,
        name: &str,
        copies: usize,
    ) -> Result<Vec<SocketAddr>, ClusterError> {
        let order = self.ring.successors(name);
        let (backend, blob) = self.conn(order[0])?.snapshot(name)?;
        let mut placed = Vec::new();
        for &idx in order.iter().skip(1).take(copies) {
            self.conn(idx)?
                .create_prebuilt(name, backend, blob.clone())?;
            placed.push(self.nodes[idx].addr);
        }
        Ok(placed)
    }

    /// Add a member: rebuild the ring, then migrate exactly the
    /// filters whose owner arc moved onto the new node (an expected
    /// `K/N` fraction — the consistent-hashing contract). Filters on
    /// unaffected arcs are not touched, not even re-read.
    pub fn add_node(&mut self, addr: SocketAddr) -> Result<MigrationReport, ClusterError> {
        if self.nodes.iter().any(|n| n.addr == addr) {
            return Err(ClusterError::DuplicateNode(addr));
        }
        self.nodes.push(Node { addr, conn: None });
        let new_ring = HashRing::build(&self.node_addrs(), self.vnodes);
        let report = self.rebalance(&new_ring)?;
        self.ring = new_ring;
        Ok(report)
    }

    /// Remove a member: migrate everything it holds to the ring's
    /// remaining owners, then drop it. Other nodes' filters are
    /// untouched (their arcs only grow).
    pub fn remove_node(&mut self, addr: SocketAddr) -> Result<MigrationReport, ClusterError> {
        let Some(pos) = self.nodes.iter().position(|n| n.addr == addr) else {
            return Err(ClusterError::UnknownNode(addr));
        };
        if self.nodes.len() == 1 {
            return Err(ClusterError::NoNodes);
        }
        let remaining: Vec<SocketAddr> = self
            .nodes
            .iter()
            .filter(|n| n.addr != addr)
            .map(|n| n.addr)
            .collect();
        let new_ring = HashRing::build(&remaining, self.vnodes);
        // Map new-ring indices to current-node indices before the
        // departing node is spliced out.
        let index_map: Vec<usize> = (0..self.nodes.len()).filter(|&i| i != pos).collect();
        let mut report = MigrationReport::default();
        let rows = self.conn(pos)?.stats()?.filters;
        for row in rows {
            let new_owner = index_map[new_ring.owner(&row.name)];
            report.moved.push(self.migrate(&row.name, pos, new_owner)?);
        }
        self.nodes.remove(pos);
        self.ring = new_ring;
        Ok(report)
    }

    /// Move every filter whose owner changes under `new_ring` (which
    /// must be built over the current `self.nodes` order).
    fn rebalance(&mut self, new_ring: &HashRing) -> Result<MigrationReport, ClusterError> {
        // Snapshot every node's inventory BEFORE any migration: a
        // filter that lands on a later-iterated node must not be
        // re-read and double-counted when that node's turn comes.
        let mut inventory: Vec<(usize, String)> = Vec::new();
        for idx in 0..self.nodes.len() {
            for row in self.conn(idx)?.stats()?.filters {
                inventory.push((idx, row.name));
            }
        }
        let mut report = MigrationReport::default();
        for (idx, name) in inventory {
            let new_owner = new_ring.owner(&name);
            if new_owner == idx {
                report.retained += 1;
            } else {
                report.moved.push(self.migrate(&name, idx, new_owner)?);
            }
        }
        Ok(report)
    }

    /// snapshot → blob-CREATE → forget.
    fn migrate(&mut self, name: &str, from: usize, to: usize) -> Result<Migration, ClusterError> {
        let (backend, blob) = self.conn(from)?.snapshot(name)?;
        self.conn(to)?.create_prebuilt(name, backend, blob)?;
        self.conn(from)?.forget(name)?;
        Ok(Migration {
            name: name.to_string(),
            backend,
            from: self.nodes[from].addr,
            to: self.nodes[to].addr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| format!("10.0.0.{}:7000", i + 1).parse().unwrap())
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_nodes() {
        let a = HashRing::build(&addrs(4), 64);
        let b = HashRing::build(&addrs(4), 64);
        let mut seen = [false; 4];
        for i in 0..1_000 {
            let name = format!("filter-{i}");
            assert_eq!(a.owner(&name), b.owner(&name));
            seen[a.owner(&name)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some node owns nothing: {seen:?}");
    }

    #[test]
    fn ring_spreads_load_roughly_evenly() {
        let ring = HashRing::build(&addrs(4), 64);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[ring.owner(&format!("filter-{i}"))] += 1;
        }
        // With 64 vnodes the per-node share should be within a factor
        // of ~2 of the 2500 ideal.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (1_000..5_000).contains(&c),
                "node {i} owns {c} of 10000: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_node_only_remaps_affected_arcs() {
        // The consistent-hashing contract: going 4 → 5 nodes moves
        // about K/5 of the keys, and every key that moves, moves TO
        // the new node (existing nodes never trade keys among
        // themselves on an add).
        let before = HashRing::build(&addrs(4), 64);
        let after = HashRing::build(&addrs(5), 64);
        let k = 10_000;
        let mut moved = 0;
        for i in 0..k {
            let name = format!("filter-{i}");
            let (b, a) = (before.owner(&name), after.owner(&name));
            if b != a {
                moved += 1;
                assert_eq!(a, 4, "'{name}' moved {b}→{a}, not to the new node");
            }
        }
        // Expected K/5 = 2000; allow generous slack for vnode
        // placement variance.
        assert!(
            (500..4_000).contains(&moved),
            "moved {moved} of {k} on a 4→5 add"
        );
    }

    #[test]
    fn successors_lead_with_owner_and_cover_every_node() {
        let ring = HashRing::build(&addrs(4), 64);
        for i in 0..100 {
            let name = format!("f{i}");
            let succ = ring.successors(&name);
            assert_eq!(succ[0], ring.owner(&name));
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "successors {succ:?}");
        }
    }

    #[test]
    fn empty_cluster_is_refused() {
        assert!(matches!(
            ClusterClient::new(vec![]),
            Err(ClusterError::NoNodes)
        ));
    }
}
