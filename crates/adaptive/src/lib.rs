//! # adaptive
//!
//! The adaptive quotient filter (tutorial §2.3), in the lineage of
//! the broom filter \[Bender et al., FOCS 2018\] and its practical
//! incarnation \[Wen et al., SIGMOD 2025\].
//!
//! An adaptive filter guarantees `O(ε·n)` false positives over *any*
//! sequence of `n` negative queries — even an adversarial one that
//! replays discovered false positives — by **extending** the
//! fingerprint of the colliding stored key whenever the caller
//! reports a false positive. Extension bits are taken from the
//! stored key's own hash, so genuinely present keys keep matching
//! (no false negatives, i.e. the filter is *monotonically* adaptive).
//!
//! Recomputing a stored key's longer fingerprint requires its
//! original key — the *remote representation*. This crate models it
//! as an explicit per-quotient key table standing in for the backing
//! dictionary (e.g. the on-disk B-tree) the literature assumes; its
//! space is excluded from [`Filter::size_in_bytes`], matching the
//! papers' accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use filter_core::{
    AdaptiveFilter, DynamicFilter, Filter, FilterError, Hasher, InsertFilter, Result,
};
use quotient::SlotTable;
use std::collections::HashMap;

/// Maximum extension length in bits.
const EXT_MAX: u32 = 7;
/// Bits encoding the extension length.
const EXT_LEN_BITS: u32 = 3;

/// An adaptive quotient filter with a remote representation.
#[derive(Debug, Clone)]
pub struct AdaptiveQuotientFilter {
    table: SlotTable,
    /// Remote representation: keys per quotient (simulates the
    /// backing dictionary).
    remote: HashMap<u64, Vec<u64>>,
    hasher: Hasher,
    r: u32,
    items: usize,
    adaptations: u64,
    max_load: f64,
}

impl AdaptiveQuotientFilter {
    /// Create with `2^q` slots and `r`-bit base remainders.
    ///
    /// Slot payload layout (low → high):
    /// `[remainder: r][ext_len: 3][ext: EXT_MAX]`.
    pub fn new(q: u32, r: u32) -> Self {
        Self::with_seed(q, r, 0)
    }

    /// As [`AdaptiveQuotientFilter::new`] with an explicit seed.
    pub fn with_seed(q: u32, r: u32, seed: u64) -> Self {
        assert!((2..=32).contains(&r));
        assert!(q + r + EXT_MAX <= 60, "hash budget exceeded");
        AdaptiveQuotientFilter {
            table: SlotTable::new(q, r + EXT_LEN_BITS + EXT_MAX),
            remote: HashMap::new(),
            hasher: Hasher::with_seed(seed),
            r,
            items: 0,
            adaptations: 0,
            max_load: 0.9,
        }
    }

    /// Number of fingerprint extensions performed so far.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// Quotient and the full extended-fingerprint source bits of a
    /// key's hash.
    #[inline]
    fn parts(&self, hash: u64) -> (u64, u64, u64) {
        let q = self.table.q();
        let quot = hash & filter_core::rem_mask(q);
        let rem = (hash >> q) & filter_core::rem_mask(self.r);
        let ext_src = (hash >> (q + self.r)) & filter_core::rem_mask(EXT_MAX);
        (quot, rem, ext_src)
    }

    #[inline]
    fn encode(&self, rem: u64, ext_len: u32, ext: u64) -> u64 {
        debug_assert!(ext_len <= EXT_MAX);
        rem | ((ext_len as u64) << self.r) | (ext << (self.r + EXT_LEN_BITS))
    }

    #[inline]
    fn decode(&self, payload: u64) -> (u64, u32, u64) {
        let rem = payload & filter_core::rem_mask(self.r);
        let ext_len = ((payload >> self.r) & filter_core::rem_mask(EXT_LEN_BITS)) as u32;
        let ext = payload >> (self.r + EXT_LEN_BITS);
        (rem, ext_len, ext)
    }

    /// Does this payload match a query hash?
    #[inline]
    fn payload_matches(&self, payload: u64, rem: u64, ext_src: u64) -> bool {
        let (prem, elen, ext) = self.decode(payload);
        prem == rem && ext == (ext_src & filter_core::rem_mask(elen))
    }

    /// The stored payload a key *should* currently have, given its
    /// extension length.
    fn payload_for(&self, key: u64, ext_len: u32) -> u64 {
        let (_, rem, ext_src) = self.parts(self.hasher.hash(&key));
        self.encode(rem, ext_len, ext_src & filter_core::rem_mask(ext_len))
    }
}

impl Filter for AdaptiveQuotientFilter {
    fn contains(&self, key: u64) -> bool {
        let h = self.hasher.hash(&key);
        let (quot, rem, ext_src) = self.parts(h);
        let mut found = false;
        self.table.scan_run(quot, |p| {
            if self.payload_matches(p, rem, ext_src) {
                found = true;
                false
            } else {
                true
            }
        });
        found
    }

    fn len(&self) -> usize {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        // Filter proper only; the remote rep is the backing store.
        self.table.size_in_bytes()
    }
}

impl InsertFilter for AdaptiveQuotientFilter {
    fn insert(&mut self, key: u64) -> Result<()> {
        if self.table.used_slots() + 1 > (self.max_load * self.table.capacity() as f64) as usize {
            return Err(FilterError::CapacityExceeded);
        }
        let h = self.hasher.hash(&key);
        let (quot, rem, _) = self.parts(h);
        let enc = self.encode(rem, 0, 0);
        self.table.modify_run(quot, |p| p.push(enc))?;
        self.remote.entry(quot).or_default().push(key);
        self.items += 1;
        Ok(())
    }
}

impl DynamicFilter for AdaptiveQuotientFilter {
    fn remove(&mut self, key: u64) -> Result<bool> {
        let h = self.hasher.hash(&key);
        let (quot, _, _) = self.parts(h);
        let Some(keys) = self.remote.get_mut(&quot) else {
            return Ok(false);
        };
        let Some(ki) = keys.iter().position(|&k| k == key) else {
            return Ok(false);
        };
        keys.swap_remove(ki);
        if keys.is_empty() {
            self.remote.remove(&quot);
        }
        // Remove the payload that belongs to this key (match against
        // every possible extension the key could carry).
        let candidates: Vec<u64> = (0..=EXT_MAX).map(|e| self.payload_for(key, e)).collect();
        let mut removed = false;
        self.table.modify_run(quot, |p| {
            if let Some(i) = p.iter().position(|v| candidates.contains(v)) {
                p.remove(i);
                removed = true;
            }
        })?;
        debug_assert!(removed, "remote and table out of sync");
        if removed {
            self.items -= 1;
        }
        Ok(removed)
    }
}

impl AdaptiveFilter for AdaptiveQuotientFilter {
    fn adapt(&mut self, key: u64) {
        // The caller observed a false positive for `key`: every stored
        // key in this quotient whose current fingerprint matches the
        // query gets its extension lengthened until it differs from
        // the query's bits (or EXT_MAX is reached).
        let h = self.hasher.hash(&key);
        let (quot, rem, ext_src) = self.parts(h);
        let Some(stored_keys) = self.remote.get(&quot) else {
            return;
        };
        let mut rewrites: Vec<(u64, u64)> = Vec::new(); // (old payload, new payload)
        for &sk in stored_keys {
            if sk == key {
                continue; // present key: not a false positive source
            }
            let sh = self.hasher.hash(&sk);
            let (_, srem, sext_src) = self.parts(sh);
            if srem != rem {
                continue;
            }
            // Find the stored key's current extension length: its
            // payload is determined by (srem, elen, sext bits).
            for elen in 0..=EXT_MAX {
                let old = self.encode(srem, elen, sext_src & filter_core::rem_mask(elen));
                if !self.payload_matches(old, rem, ext_src) {
                    continue; // this ext level doesn't collide
                }
                // Extend until the stored key's bits diverge from the
                // query's.
                let mut new_len = elen;
                while new_len < EXT_MAX {
                    new_len += 1;
                    let smask = sext_src & filter_core::rem_mask(new_len);
                    let qmask = ext_src & filter_core::rem_mask(new_len);
                    if smask != qmask {
                        break;
                    }
                }
                let new = self.encode(srem, new_len, sext_src & filter_core::rem_mask(new_len));
                if new != old {
                    rewrites.push((old, new));
                }
            }
        }
        if rewrites.is_empty() {
            return;
        }
        let adapted = &mut self.adaptations;
        self.table
            .modify_run(quot, |p| {
                for (old, new) in rewrites {
                    if let Some(i) = p.iter().position(|&v| v == old) {
                        p[i] = new;
                        *adapted += 1;
                    }
                }
            })
            .expect("rewrite never changes run length");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{disjoint_keys, unique_keys};

    #[test]
    fn basic_roundtrip() {
        let keys = unique_keys(160, 20_000);
        let mut f = AdaptiveQuotientFilter::new(15, 8);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        assert!(keys.iter().all(|&k| f.contains(k)));
    }

    #[test]
    fn adapt_fixes_false_positives_without_false_negatives() {
        let keys = unique_keys(161, 20_000);
        let mut f = AdaptiveQuotientFilter::new(15, 6); // high base FPR
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let neg = disjoint_keys(162, 50_000, &keys);
        let fps: Vec<u64> = neg.iter().copied().filter(|&k| f.contains(k)).collect();
        assert!(fps.len() > 50, "want plenty of FPs, got {}", fps.len());
        for &k in &fps {
            f.adapt(k);
        }
        let survivors = fps.iter().filter(|&&k| f.contains(k)).count();
        assert!(
            survivors * 50 < fps.len(),
            "{survivors}/{} FPs survived",
            fps.len()
        );
        assert!(keys.iter().all(|&k| f.contains(k)), "adapt broke a member");
    }

    #[test]
    fn adversarial_replay_is_bounded() {
        // Replay each discovered FP 200×: an adaptive filter pays
        // roughly once per distinct FP.
        let keys = unique_keys(163, 10_000);
        let mut f = AdaptiveQuotientFilter::new(14, 6);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let neg = disjoint_keys(164, 5_000, &keys);
        let mut total_fps = 0u64;
        for &k in &neg {
            for _ in 0..200 {
                if f.contains(k) {
                    total_fps += 1;
                    f.adapt(k);
                }
            }
        }
        let base_fpr = 2f64.powi(-6);
        let non_adaptive = (5_000.0 * 200.0 * base_fpr) as u64;
        assert!(
            total_fps < non_adaptive / 10,
            "{total_fps} FPs vs non-adaptive {non_adaptive}"
        );
    }

    #[test]
    fn deletes_keep_remote_in_sync() {
        let keys = unique_keys(165, 5_000);
        let mut f = AdaptiveQuotientFilter::new(13, 8);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        // Adapt a few, then delete everything.
        let neg = disjoint_keys(166, 2_000, &keys);
        for &k in &neg {
            if f.contains(k) {
                f.adapt(k);
            }
        }
        for &k in &keys {
            assert!(f.remove(k).unwrap(), "delete lost key");
        }
        assert_eq!(f.len(), 0);
        let residue = keys.iter().filter(|&&k| f.contains(k)).count();
        assert_eq!(residue, 0);
    }

    #[test]
    fn remove_absent_returns_false() {
        let mut f = AdaptiveQuotientFilter::new(10, 8);
        f.insert(1).unwrap();
        assert!(!f.remove(2).unwrap());
        assert!(f.remove(1).unwrap());
    }
}
