//! Simulated storage-I/O accounting.
//!
//! The paper's LSM claims are statements about *numbers of I/Os*
//! (filters skip runs; Monkey bounds the expected probes; range
//! filters avoid empty-range seeks), not device latencies — so the
//! storage layer here is in-memory and every would-be block access
//! increments a counter. This is the measured quantity in E11.

use std::cell::Cell;
use std::rc::Rc;

/// Shared I/O counter threaded through runs and the tree.
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    reads: Rc<Cell<u64>>,
    writes: Rc<Cell<u64>>,
}

impl IoCounter {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` block reads.
    #[inline]
    pub fn read(&self, n: u64) {
        self.reads.set(self.reads.get() + n);
    }

    /// Record `n` block writes.
    #[inline]
    pub fn write(&self, n: u64) {
        self.writes.set(self.writes.get() + n);
    }

    /// Total block reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total block writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = IoCounter::new();
        let b = a.clone();
        a.read(3);
        b.write(2);
        assert_eq!(b.reads(), 3);
        assert_eq!(a.writes(), 2);
        a.reset();
        assert_eq!(b.reads(), 0);
    }
}
