//! Simulated storage-I/O accounting.
//!
//! The paper's LSM claims are statements about *numbers of I/Os*
//! (filters skip runs; Monkey bounds the expected probes; range
//! filters avoid empty-range seeks), not device latencies — so the
//! storage layer here is in-memory and every would-be block access
//! increments a counter. This is the measured quantity in E11.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared I/O counter threaded through runs and the tree.
///
/// Atomic (not `Cell`) so structures that embed one — notably
/// [`CascadeFilter`](crate::CascadeFilter) — stay `Send` and can sit
/// behind the `concurrent` crate's per-shard locks. Counts use
/// `Relaxed` ordering: they are independent statistics, never used to
/// synchronise.
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    reads: Arc<AtomicU64>,
    writes: Arc<AtomicU64>,
}

impl IoCounter {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` block reads (also feeds the process-wide
    /// [`crate::LSM_IO_READS`] telemetry family).
    #[inline]
    pub fn read(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
        crate::LSM_IO_READS.add(n);
    }

    /// Record `n` block writes (also feeds the process-wide
    /// [`crate::LSM_IO_WRITES`] telemetry family).
    #[inline]
    pub fn write(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
        crate::LSM_IO_WRITES.add(n);
    }

    /// Total block reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total block writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = IoCounter::new();
        let b = a.clone();
        a.read(3);
        b.write(2);
        assert_eq!(b.reads(), 3);
        assert_eq!(a.writes(), 2);
        a.reset();
        assert_eq!(b.reads(), 0);
    }
}
