//! The leveled LSM-tree.
//!
//! A write-optimized engine in the mould the tutorial describes
//! (§3.1): a memtable flushes as immutable sorted runs into level 0;
//! when a level holds `size_ratio` runs they are merged into the next
//! level. Point lookups consult the per-run filters newest-first;
//! range scans consult per-run range filters. An optional **global
//! maplet index** (Chucky/SlimDB style) replaces all per-run point
//! filters with a single maplet mapping each key to the run that
//! holds it.

use crate::io::IoCounter;
use crate::policy::{FilterKind, FprAllocation};
use crate::run::{RangeFilterKind, SortedRun};
use filter_core::Maplet;
use maplet::QuotientMaplet;
use std::collections::BTreeMap;

/// How runs are merged down the tree — the §3.1 design axis
/// Dostoevsky/LSM-Bush explore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompactionPolicy {
    /// Accumulate `size_ratio` runs per level, then merge them into
    /// one run in the next level. Cheapest writes, most runs to probe.
    Tiered,
    /// At most one run per level; every merge rewrites the next
    /// level's run. Most expensive writes, fewest runs.
    Leveled,
    /// Dostoevsky's lazy leveling: tiered everywhere *except* the
    /// largest level, which stays a single run — write cost close to
    /// tiering, point/long-range cost close to leveling (given
    /// filters absorb the extra small runs).
    LazyLeveled,
}

/// Index mode for point lookups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexMode {
    /// One point filter per run (the traditional design).
    PerRunFilters,
    /// One global maplet keyed by key fingerprint, valued with a run
    /// id: a point lookup probes only the maplet's candidate runs.
    GlobalMaplet,
}

/// Tree configuration.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Memtable capacity in entries before flushing.
    pub memtable_capacity: usize,
    /// Runs per level before compaction into the next level.
    pub size_ratio: usize,
    /// Which point filter guards each run.
    pub filter_kind: FilterKind,
    /// How FPR is allocated across levels.
    pub allocation: FprAllocation,
    /// Range filter per run.
    pub range_filter: RangeFilterKind,
    /// Per-run filters vs global maplet.
    pub index_mode: IndexMode,
    /// Merge policy.
    pub compaction: CompactionPolicy,
    /// Maintain one tree-wide range filter (the GRF idea: a single
    /// *global* structure answers range emptiness for the whole tree
    /// in one probe, instead of one probe per run).
    pub global_range_filter: Option<GlobalRangeConfig>,
}

/// Parameters of the global range filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalRangeConfig {
    /// lg of the longest supported range.
    pub l_bits: u32,
    /// Target range FPR.
    pub eps: f64,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_capacity: 4096,
            size_ratio: 4,
            filter_kind: FilterKind::Bloom,
            allocation: FprAllocation::Uniform(0.01),
            range_filter: RangeFilterKind::None,
            index_mode: IndexMode::PerRunFilters,
            compaction: CompactionPolicy::Tiered,
            global_range_filter: None,
        }
    }
}

/// A monotonically increasing id per run, used as maplet values.
type RunId = u64;

/// Reserved value marking a deleted key (the classic LSM tombstone).
/// User values must stay below it.
pub const TOMBSTONE: u64 = u64::MAX;

/// The LSM tree.
pub struct LsmTree {
    config: LsmConfig,
    memtable: BTreeMap<u64, u64>,
    /// `levels[0]` is the newest; each level holds runs newest-first.
    levels: Vec<Vec<(RunId, SortedRun)>>,
    io: IoCounter,
    next_run_id: RunId,
    /// Global maplet: key fingerprint → run id (GlobalMaplet mode).
    maplet: Option<QuotientMaplet>,
    /// GRF-style tree-wide range filter, rebuilt on flush/compaction.
    global_range: Option<rangefilter::Grafite>,
    maplet_capacity: usize,
}

impl LsmTree {
    /// Create a tree with the given configuration.
    pub fn new(config: LsmConfig) -> Self {
        let maplet = match config.index_mode {
            IndexMode::PerRunFilters => None,
            IndexMode::GlobalMaplet => Some(QuotientMaplet::for_capacity(1 << 16, 0.001, 16)),
        };
        LsmTree {
            config,
            memtable: BTreeMap::new(),
            levels: Vec::new(),
            io: IoCounter::new(),
            next_run_id: 0,
            maplet,
            global_range: None,
            maplet_capacity: 1 << 16,
        }
    }

    /// The shared I/O counter.
    pub fn io(&self) -> &IoCounter {
        &self.io
    }

    /// Insert or update a key.
    ///
    /// # Panics
    /// Panics if `value` is the reserved [`TOMBSTONE`].
    pub fn put(&mut self, key: u64, value: u64) {
        assert_ne!(value, TOMBSTONE, "TOMBSTONE is reserved");
        self.memtable.insert(key, value);
        if self.memtable.len() >= self.config.memtable_capacity {
            self.flush();
        }
    }

    /// Delete a key by writing a tombstone; the tombstone shadows
    /// older versions until bottom-level compaction drops it.
    pub fn delete(&mut self, key: u64) {
        self.memtable.insert(key, TOMBSTONE);
        if self.memtable.len() >= self.config.memtable_capacity {
            self.flush();
        }
    }

    /// Flush the memtable into a level-0 run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(u64, u64)> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.push_run(0, entries);
        self.maybe_compact();
    }

    fn push_run(&mut self, level: usize, entries: Vec<(u64, u64)>) {
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        let total = self.stored_entries() + entries.len();
        let eps = self.config.allocation.eps_for_run(entries.len(), total);
        let filter_kind = match self.config.index_mode {
            IndexMode::PerRunFilters => self.config.filter_kind,
            IndexMode::GlobalMaplet => FilterKind::None,
        };
        let id = self.next_run_id;
        self.next_run_id += 1;
        if let Some(m) = &mut self.maplet {
            // (Re)register each key under its new run id. Old run-id
            // entries for the same fingerprint are removed lazily via
            // rebuild during compaction (see `rebuild_maplet`).
            for &(k, _) in &entries {
                if m.len() + 1 >= self.maplet_capacity {
                    self.maplet_capacity *= 2;
                    let mut bigger = QuotientMaplet::for_capacity(self.maplet_capacity, 0.001, 16);
                    for run_level in &self.levels {
                        for (rid, run) in run_level {
                            for &(key, _) in run.drain_for_compaction() {
                                bigger.insert(key, *rid).expect("maplet insert");
                            }
                        }
                    }
                    *m = bigger;
                }
                m.insert(k, id).expect("maplet insert");
            }
        }
        let run = SortedRun::build(
            entries,
            filter_kind,
            eps,
            self.config.range_filter,
            self.io.clone(),
        );
        self.levels[level].insert(0, (id, run));
    }

    fn maybe_compact(&mut self) {
        let mut level = 0;
        while level < self.levels.len() {
            let trigger = match self.config.compaction {
                // Tiered: a level holding `size_ratio` runs spills
                // into the next one.
                CompactionPolicy::Tiered => self.levels[level].len() >= self.config.size_ratio,
                // Lazy leveling: tiered triggers above, plus a *size*
                // trigger on the single-run bottom level so it moves
                // down (gaining a level) instead of being rewritten
                // indefinitely.
                CompactionPolicy::LazyLeveled => {
                    let cap = self.config.memtable_capacity
                        * self.config.size_ratio.pow(level as u32 + 1);
                    self.levels[level].len() >= self.config.size_ratio
                        || (level + 1 == self.levels.len()
                            && self.levels[level]
                                .iter()
                                .map(|(_, r)| r.len())
                                .sum::<usize>()
                                > cap)
                }
                // Leveled: one run per level, capped at
                // memtable · ratio^(level+1) entries.
                CompactionPolicy::Leveled => {
                    let cap = self.config.memtable_capacity
                        * self.config.size_ratio.pow(level as u32 + 1);
                    self.levels[level].len() > 1
                        || self.levels[level]
                            .iter()
                            .map(|(_, r)| r.len())
                            .sum::<usize>()
                            > cap
                }
            };
            if trigger {
                self.compact_level(level);
            }
            level += 1;
        }
        if self.maplet.is_some() {
            self.rebuild_maplet();
        }
        self.rebuild_global_range();
    }

    /// Rebuild the GRF-style global range filter over every live key
    /// (an O(n) pass piggybacking on compaction, like GRF's build).
    fn rebuild_global_range(&mut self) {
        let Some(cfg) = self.config.global_range_filter else {
            return;
        };
        let mut keys: Vec<u64> = self
            .levels
            .iter()
            .flatten()
            .flat_map(|(_, run)| run.entries_for_index_build().iter().map(|&(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        self.global_range = Some(rangefilter::Grafite::build(&keys, cfg.l_bits, cfg.eps));
    }

    /// Whether a merge arriving at `level` must absorb that level's
    /// resident run(s) (a *leveling* merge) rather than stack a new
    /// run beside them (a *tiering* merge).
    fn merge_absorbs(&self, level: usize) -> bool {
        match self.config.compaction {
            CompactionPolicy::Tiered => false,
            CompactionPolicy::Leveled => true,
            // Lazy leveling keeps only the largest level as one run:
            // absorb when the destination is (or becomes) the bottom.
            CompactionPolicy::LazyLeveled => level + 2 >= self.levels.len(),
        }
    }

    /// Merge every run of `level` into the next level, absorbing the
    /// destination's runs when the policy says so.
    fn compact_level(&mut self, level: usize) {
        let mut runs = std::mem::take(&mut self.levels[level]);
        if self.merge_absorbs(level) && self.levels.len() > level + 1 {
            // The destination's runs are older than everything in
            // `level`; append them so the newest-first merge below
            // still resolves duplicates correctly.
            runs.extend(std::mem::take(&mut self.levels[level + 1]));
        }
        // Newest-first merge: for duplicate keys the newest run wins.
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, run) in runs.iter().rev() {
            for &(k, v) in run.drain_for_compaction() {
                merged.insert(k, v); // older first, newer overwrites
            }
        }
        // Tombstones can be dropped once nothing older can exist
        // below the merge output (it becomes the bottom of the tree).
        let nothing_below = self.levels.get(level + 1).is_none_or(|l| l.is_empty())
            && self.levels.iter().skip(level + 2).all(|l| l.is_empty());
        let entries: Vec<(u64, u64)> = merged
            .into_iter()
            .filter(|&(_, v)| !(nothing_below && v == TOMBSTONE))
            .collect();
        if entries.is_empty() {
            return;
        }
        self.push_run(level + 1, entries);
    }

    /// Rebuild the global maplet from live runs (removes stale run
    /// ids left by compaction).
    fn rebuild_maplet(&mut self) {
        let Some(m) = &mut self.maplet else { return };
        let mut fresh = QuotientMaplet::for_capacity(self.maplet_capacity, 0.001, 16);
        for level in &self.levels {
            for (rid, run) in level {
                for &(k, _) in run.drain_for_compaction() {
                    fresh.insert(k, *rid).expect("maplet insert");
                }
            }
        }
        *m = fresh;
    }

    /// Point lookup (tombstoned keys read as absent).
    pub fn get(&self, key: u64) -> Option<u64> {
        self.get_versioned(key).filter(|&v| v != TOMBSTONE)
    }

    /// Newest stored version of a key, tombstones included.
    fn get_versioned(&self, key: u64) -> Option<u64> {
        if let Some(&v) = self.memtable.get(&key) {
            return Some(v);
        }
        match &self.maplet {
            Some(m) => {
                let mut candidates = Vec::new();
                m.get(key, &mut candidates);
                // Newest candidate run id wins; probe in descending id
                // order.
                candidates.sort_unstable_by(|a, b| b.cmp(a));
                candidates.dedup();
                for rid in candidates {
                    if let Some(run) = self.run_by_id(rid) {
                        if let Some(v) = run.probe_storage(key) {
                            return Some(v);
                        }
                    }
                }
                None
            }
            None => {
                for level in &self.levels {
                    for (_, run) in level {
                        if let Some(v) = run.get(key) {
                            return Some(v);
                        }
                    }
                }
                None
            }
        }
    }

    fn run_by_id(&self, id: RunId) -> Option<&SortedRun> {
        self.levels
            .iter()
            .flatten()
            .find(|(rid, _)| *rid == id)
            .map(|(_, r)| r)
    }

    /// Range scan over `[lo, hi]`, returning `(key, value)` pairs in
    /// key order (newest value per key).
    pub fn scan(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
        // One global probe can prove the storage side empty (the GRF
        // saving: CPU cost independent of run count).
        let storage_empty = match &self.global_range {
            Some(g) => {
                use filter_core::RangeFilter;
                !g.may_contain_range(lo, hi)
            }
            None => false,
        };
        if storage_empty {
            for (&k, &v) in self.memtable.range(lo..=hi) {
                acc.insert(k, v);
            }
            return acc.into_iter().filter(|&(_, v)| v != TOMBSTONE).collect();
        }
        // Oldest level first so newer writes overwrite.
        let mut buf = Vec::new();
        for level in self.levels.iter().rev() {
            for (_, run) in level.iter().rev() {
                buf.clear();
                run.scan(lo, hi, &mut buf);
                for &(k, v) in &buf {
                    acc.insert(k, v);
                }
            }
        }
        for (&k, &v) in self.memtable.range(lo..=hi) {
            acc.insert(k, v);
        }
        acc.into_iter().filter(|&(_, v)| v != TOMBSTONE).collect()
    }

    /// Total runs across all levels.
    pub fn run_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total filter memory (per-run filters plus maplet).
    pub fn filter_bytes(&self) -> usize {
        let runs: usize = self
            .levels
            .iter()
            .flatten()
            .map(|(_, r)| r.filter_bytes())
            .sum();
        runs + self.maplet.as_ref().map_or(0, |m| m.size_in_bytes())
    }

    /// Write amplification so far: blocks written / blocks of logical
    /// data ingested (the §3.1 Dostoevsky metric).
    pub fn write_amplification(&self, logical_entries: u64) -> f64 {
        let logical_blocks = logical_entries
            .div_ceil(crate::run::BLOCK_ENTRIES as u64)
            .max(1);
        self.io.writes() as f64 / logical_blocks as f64
    }

    /// Total entries in all runs (pre-dedup).
    pub fn stored_entries(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|(_, r)| r.len())
            .sum::<usize>()
            + self.memtable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(config: LsmConfig, n: u64) -> LsmTree {
        let mut t = LsmTree::new(config);
        for i in 0..n {
            t.put(filter_core::hash::mix64(i), i);
        }
        t.flush();
        t
    }

    #[test]
    fn get_returns_latest_value() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 128,
            ..Default::default()
        });
        for i in 0..5_000u64 {
            t.put(i % 100, i);
        }
        t.flush();
        for k in 0..100u64 {
            let v = t.get(k).expect("key present");
            assert_eq!(v % 100, k, "stale value for {k}");
            assert!(v >= 4_900, "not the latest write: {v}");
        }
    }

    #[test]
    fn all_inserted_keys_retrievable() {
        let t = tree_with(
            LsmConfig {
                memtable_capacity: 512,
                ..Default::default()
            },
            20_000,
        );
        for i in (0..20_000u64).step_by(97) {
            assert_eq!(t.get(filter_core::hash::mix64(i)), Some(i));
        }
        assert!(t.level_count() >= 2, "compaction never ran");
    }

    #[test]
    fn filters_save_negative_io() {
        let mk = |kind| {
            let t = tree_with(
                LsmConfig {
                    memtable_capacity: 512,
                    filter_kind: kind,
                    ..Default::default()
                },
                20_000,
            );
            t.io().reset();
            for i in 20_000..25_000u64 {
                assert_eq!(t.get(filter_core::hash::mix64(i)), None);
            }
            t.io().reads()
        };
        let without = mk(FilterKind::None);
        let with = mk(FilterKind::Bloom);
        assert!(
            with * 10 < without,
            "bloom {with} reads vs none {without} reads"
        );
    }

    #[test]
    fn maplet_mode_probes_at_most_candidates() {
        let t = tree_with(
            LsmConfig {
                memtable_capacity: 512,
                index_mode: IndexMode::GlobalMaplet,
                ..Default::default()
            },
            20_000,
        );
        // Positive lookups still work.
        for i in (0..20_000u64).step_by(101) {
            assert_eq!(t.get(filter_core::hash::mix64(i)), Some(i));
        }
        // Negative lookups are nearly free.
        t.io().reset();
        for i in 20_000..24_000u64 {
            assert_eq!(t.get(filter_core::hash::mix64(i)), None);
        }
        let neg_reads = t.io().reads();
        assert!(neg_reads < 100, "maplet negatives cost {neg_reads} reads");
    }

    #[test]
    fn scan_returns_sorted_latest() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 256,
            range_filter: RangeFilterKind::Grafite {
                l_bits: 16,
                eps: 0.01,
            },
            ..Default::default()
        });
        for i in 0..5_000u64 {
            t.put(i * 3, i);
        }
        t.flush();
        let hits = t.scan(300, 330);
        assert_eq!(
            hits,
            vec![
                (300, 100),
                (303, 101),
                (306, 102),
                (309, 103),
                (312, 104),
                (315, 105),
                (318, 106),
                (321, 107),
                (324, 108),
                (327, 109),
                (330, 110)
            ]
        );
    }

    #[test]
    fn compaction_policies_trade_writes_for_runs() {
        let build = |compaction| {
            let mut t = LsmTree::new(LsmConfig {
                memtable_capacity: 256,
                size_ratio: 4,
                compaction,
                ..Default::default()
            });
            for i in 0..40_000u64 {
                t.put(filter_core::hash::mix64(i), i);
            }
            t.flush();
            // Correctness across all policies.
            for i in (0..40_000u64).step_by(503) {
                assert_eq!(t.get(filter_core::hash::mix64(i)), Some(i));
            }
            (t.write_amplification(40_000), t.run_count())
        };
        let (wa_t, runs_t) = build(CompactionPolicy::Tiered);
        let (wa_l, runs_l) = build(CompactionPolicy::Leveled);
        let (wa_z, runs_z) = build(CompactionPolicy::LazyLeveled);
        // Leveling pays the most writes and keeps the fewest runs.
        assert!(wa_l > wa_t, "leveled WA {wa_l} <= tiered {wa_t}");
        assert!(runs_l < runs_t, "leveled runs {runs_l} >= tiered {runs_t}");
        // Lazy leveling: write cost near tiering, bottom level single.
        assert!(wa_z < wa_l, "lazy WA {wa_z} >= leveled {wa_l}");
        assert!(runs_z <= runs_t, "lazy runs {runs_z} > tiered {runs_t}");
    }

    #[test]
    fn global_range_filter_skips_empty_scans_with_one_probe() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 512,
            global_range_filter: Some(GlobalRangeConfig {
                l_bits: 8,
                eps: 0.01,
            }),
            ..Default::default()
        });
        for i in 0..20_000u64 {
            t.put(i * 1_000, i);
        }
        t.flush();
        t.io().reset();
        for i in 0..2_000u64 {
            let lo = i * 1_000 + 1;
            assert!(t.scan(lo, lo + 50).is_empty());
        }
        // The global filter proves emptiness without touching storage.
        assert!(
            t.io().reads() < 60,
            "{} reads for 2k empty scans",
            t.io().reads()
        );
        // Correctness: non-empty scans still return everything.
        assert_eq!(t.scan(0, 5_000).len(), 6);
        // Memtable-only data is visible even when storage is empty in
        // the range.
        t.put(123_456_789, 7);
        assert_eq!(t.scan(123_456_700, 123_456_800), vec![(123_456_789, 7)]);
    }

    #[test]
    fn tombstones_hide_and_eventually_vanish() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 128,
            size_ratio: 3,
            ..Default::default()
        });
        for i in 0..5_000u64 {
            t.put(i, i * 2);
        }
        for i in (0..5_000u64).step_by(2) {
            t.delete(i);
        }
        t.flush();
        // Deleted keys read as absent, survivors intact, scans clean.
        for i in 0..5_000u64 {
            if i % 2 == 0 {
                assert_eq!(t.get(i), None, "tombstoned {i} visible");
            } else {
                assert_eq!(t.get(i), Some(i * 2));
            }
        }
        let scanned = t.scan(0, 99);
        assert_eq!(scanned.len(), 50);
        assert!(scanned.iter().all(|&(k, _)| k % 2 == 1));
        // Deleting everything then churning compacts tombstones away
        // without resurrecting anything.
        for i in 0..5_000u64 {
            t.delete(i);
        }
        for i in 10_000..40_000u64 {
            t.put(i, i);
        }
        t.flush();
        for i in (0..5_000u64).step_by(97) {
            assert_eq!(t.get(i), None);
        }
    }

    #[test]
    fn delete_then_reinsert_reads_new_value() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 64,
            ..Default::default()
        });
        t.put(5, 50);
        t.delete(5);
        for i in 100..400u64 {
            t.put(i, i); // push everything through flushes
        }
        assert_eq!(t.get(5), None);
        t.put(5, 51);
        t.flush();
        assert_eq!(t.get(5), Some(51));
    }

    #[test]
    fn leveled_keeps_one_run_per_level() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 128,
            size_ratio: 3,
            compaction: CompactionPolicy::Leveled,
            ..Default::default()
        });
        for i in 0..10_000u64 {
            t.put(filter_core::hash::mix64(i), i);
        }
        t.flush();
        for level in &t.levels {
            assert!(level.len() <= 1, "level holds {} runs", level.len());
        }
    }

    #[test]
    fn range_filters_skip_empty_scans() {
        let build = |range_filter| {
            let mut t = LsmTree::new(LsmConfig {
                memtable_capacity: 512,
                range_filter,
                ..Default::default()
            });
            // Sparse keys: multiples of 1000.
            for i in 0..20_000u64 {
                t.put(i * 1000, i);
            }
            t.flush();
            t.io().reset();
            for i in 0..2_000u64 {
                let lo = i * 1000 + 1;
                assert!(t.scan(lo, lo + 50).is_empty());
            }
            t.io().reads()
        };
        let without = build(RangeFilterKind::None);
        let with = build(RangeFilterKind::Grafite {
            l_bits: 8,
            eps: 0.01,
        });
        assert!(
            with * 5 < without,
            "grafite {with} reads vs none {without} reads"
        );
    }
}
