//! Filter-accelerated equality joins (§3.1, last case study).
//!
//! "A common approach is to build a filter over qualified join keys
//! from the smaller table. When the larger table is scanned, we can
//! check its join keys against this filter to preemptively discard
//! rows with non-matching join keys" — reducing the number and size
//! of join partitions. This module implements exactly that semi-join
//! pushdown with a pluggable filter and reports how many probe-side
//! rows survive to the (expensive) join phase.

use filter_core::Filter;

/// Statistics from one filtered join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStats {
    /// Probe-side rows scanned.
    pub probed: usize,
    /// Rows that passed the filter and entered the join (includes
    /// ε false positives).
    pub shipped: usize,
    /// Rows producing actual matches.
    pub matched: usize,
    /// Bytes of filter memory used for the pushdown.
    pub filter_bytes: usize,
}

impl JoinStats {
    /// Fraction of probe rows discarded before the join.
    pub fn discard_rate(&self) -> f64 {
        1.0 - self.shipped as f64 / self.probed.max(1) as f64
    }
}

/// Join `build` (small side: key → payload) against `probe` (large
/// side: (key, payload) rows), with `filter` — built over the small
/// side's keys — pruning probe rows first. Returns joined rows and
/// stats. With `filter = None` every probe row ships to the join.
pub fn filtered_join(
    build: &std::collections::HashMap<u64, u64>,
    probe: &[(u64, u64)],
    filter: Option<&dyn Filter>,
) -> (Vec<(u64, u64, u64)>, JoinStats) {
    let mut out = Vec::new();
    let mut shipped = 0usize;
    for &(k, payload) in probe {
        if let Some(f) = filter {
            if !f.contains(k) {
                continue; // discarded before the join
            }
        }
        shipped += 1;
        if let Some(&build_payload) = build.get(&k) {
            out.push((k, build_payload, payload));
        }
    }
    let stats = JoinStats {
        probed: probe.len(),
        shipped,
        matched: out.len(),
        filter_bytes: filter.map_or(0, |f| f.size_in_bytes()),
    };
    (out, stats)
}

/// Convenience: build a Bloom filter over the small side and join.
pub fn bloom_join(
    build: &std::collections::HashMap<u64, u64>,
    probe: &[(u64, u64)],
    eps: f64,
) -> (Vec<(u64, u64, u64)>, JoinStats) {
    use filter_core::InsertFilter;
    let mut f = bloom::BloomFilter::new(build.len().max(8), eps);
    for &k in build.keys() {
        f.insert(k).expect("bloom insert");
    }
    filtered_join(build, probe, Some(&f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tables(selectivity: f64) -> (HashMap<u64, u64>, Vec<(u64, u64)>) {
        let small: HashMap<u64, u64> = workloads::unique_keys(700, 10_000)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect();
        let small_keys: Vec<u64> = small.keys().copied().collect();
        let mut rng = workloads::rng(701);
        use rand::Rng;
        let probe: Vec<(u64, u64)> = (0..200_000u64)
            .map(|i| {
                if rng.gen::<f64>() < selectivity {
                    (small_keys[rng.gen_range(0..small_keys.len())], i)
                } else {
                    (rng.gen(), i)
                }
            })
            .collect();
        (small, probe)
    }

    #[test]
    fn filtered_join_matches_unfiltered() {
        let (small, probe) = tables(0.05);
        let (plain, _) = filtered_join(&small, &probe, None);
        let (pushed, _) = bloom_join(&small, &probe, 0.01);
        assert_eq!(plain, pushed, "pushdown changed the join result");
    }

    #[test]
    fn selective_join_discards_most_rows() {
        let (small, probe) = tables(0.02);
        let (_, stats) = bloom_join(&small, &probe, 0.01);
        assert!(
            stats.discard_rate() > 0.95,
            "discard rate {}",
            stats.discard_rate()
        );
        // Shipped ≈ matches + eps·non-matches.
        assert!(stats.shipped < stats.matched + probe.len() / 50);
    }

    #[test]
    fn unselective_join_gains_little() {
        let (small, probe) = tables(0.9);
        let (_, stats) = bloom_join(&small, &probe, 0.01);
        assert!(
            stats.discard_rate() < 0.15,
            "discard {}",
            stats.discard_rate()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let (small, probe) = tables(0.1);
        let (rows, stats) = bloom_join(&small, &probe, 0.01);
        assert_eq!(stats.probed, probe.len());
        assert_eq!(stats.matched, rows.len());
        assert!(stats.shipped >= stats.matched);
        assert!(stats.filter_bytes > 0);
    }
}
