//! Immutable sorted runs with fence pointers, per-run point filters,
//! and optional per-run range filters.

use crate::io::IoCounter;
use crate::policy::{build_filter, FilterKind};
use filter_core::{Filter, RangeFilter};
use rangefilter::Grafite;

/// Entries per storage block (one simulated I/O reads one block).
pub const BLOCK_ENTRIES: usize = 64;

/// The range-filter family attached to runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeFilterKind {
    /// No range filter: a range scan probes every overlapping run.
    None,
    /// Grafite per run (robust choice per §2.5).
    Grafite {
        /// lg of the longest supported range.
        l_bits: u32,
        /// Target range FPR.
        eps: f64,
    },
}

/// An immutable sorted run of `(key, value)` entries.
pub struct SortedRun {
    entries: Vec<(u64, u64)>,
    /// Fence pointers: first key of each block (kept in memory; no
    /// I/O to consult).
    fences: Vec<u64>,
    filter: Option<Box<dyn Filter>>,
    range_filter: Option<Grafite>,
    io: IoCounter,
}

impl std::fmt::Debug for SortedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortedRun")
            .field("entries", &self.entries.len())
            .field("filtered", &self.filter.is_some())
            .finish()
    }
}

impl SortedRun {
    /// Build a run from sorted, key-distinct entries; writing it to
    /// storage costs `blocks` write I/Os.
    pub fn build(
        entries: Vec<(u64, u64)>,
        filter_kind: FilterKind,
        eps: f64,
        range_kind: RangeFilterKind,
        io: IoCounter,
    ) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let keys: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let filter = build_filter(filter_kind, &keys, eps);
        let range_filter = match range_kind {
            RangeFilterKind::None => None,
            RangeFilterKind::Grafite { l_bits, eps } => Some(Grafite::build(&keys, l_bits, eps)),
        };
        let fences = entries
            .chunks(BLOCK_ENTRIES)
            .map(|b| b[0].0)
            .collect::<Vec<_>>();
        io.write(entries.len().div_ceil(BLOCK_ENTRIES) as u64);
        SortedRun {
            entries,
            fences,
            filter,
            range_filter,
            io,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest and largest key.
    pub fn key_range(&self) -> (u64, u64) {
        (
            self.entries.first().map(|e| e.0).unwrap_or(u64::MAX),
            self.entries.last().map(|e| e.0).unwrap_or(0),
        )
    }

    /// Filter memory attributable to this run.
    pub fn filter_bytes(&self) -> usize {
        self.filter.as_ref().map_or(0, |f| f.size_in_bytes())
            + self
                .range_filter
                .as_ref()
                .map_or(0, RangeFilter::size_in_bytes)
    }

    /// Point lookup. Consults the in-memory filter first; a filter
    /// negative costs zero I/O, otherwise one block read.
    pub fn get(&self, key: u64) -> Option<u64> {
        if let Some(f) = &self.filter {
            if !f.contains(key) {
                return None;
            }
        }
        self.probe_storage(key)
    }

    /// Probe storage directly (bypassing the filter), costing one
    /// block I/O via the fence pointers.
    pub fn probe_storage(&self, key: u64) -> Option<u64> {
        let (lo, hi) = self.key_range();
        if key < lo || key > hi {
            return None; // fence pointers rule it out for free
        }
        self.io.read(1);
        let block = self.fences.partition_point(|&f| f <= key) - 1;
        let start = block * BLOCK_ENTRIES;
        let end = (start + BLOCK_ENTRIES).min(self.entries.len());
        self.entries[start..end]
            .binary_search_by_key(&key, |e| e.0)
            .ok()
            .map(|i| self.entries[start + i].1)
    }

    /// Range scan over `[lo, hi]`, appending hits to `out`. The range
    /// filter (if any) can prove emptiness for zero I/O; otherwise
    /// each block overlapping the range costs one read.
    pub fn scan(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        let (klo, khi) = self.key_range();
        if hi < klo || lo > khi {
            return;
        }
        if let Some(rf) = &self.range_filter {
            if !rf.may_contain_range(lo, hi) {
                return;
            }
        }
        let start_block = self.fences.partition_point(|&f| f <= lo).saturating_sub(1);
        let mut touched = 0u64;
        let mut found_any = false;
        for b in start_block..self.fences.len() {
            let s = b * BLOCK_ENTRIES;
            let e = (s + BLOCK_ENTRIES).min(self.entries.len());
            if self.entries[s].0 > hi {
                break;
            }
            if self.entries[e - 1].0 < lo {
                continue;
            }
            touched += 1;
            for &(k, v) in &self.entries[s..e] {
                if k >= lo && k <= hi {
                    out.push((k, v));
                    found_any = true;
                }
            }
        }
        // Even a fruitless seek into the run costs at least one I/O
        // once the range filter has passed it.
        self.io.read(touched.max(u64::from(!found_any)));
    }

    /// Entries for index (re)builds that piggyback on writes the
    /// engine is doing anyway (filters are built while the run's data
    /// is still in memory, so no storage reads are charged).
    pub(crate) fn entries_for_index_build(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// Iterate all entries (used by compaction; costs block reads).
    pub fn drain_for_compaction(&self) -> &[(u64, u64)] {
        self.io
            .read(self.entries.len().div_ceil(BLOCK_ENTRIES) as u64);
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<(u64, u64)> {
        (0..n as u64).map(|i| (i * 10, i)).collect()
    }

    #[test]
    fn get_finds_and_counts_io() {
        let io = IoCounter::new();
        let r = SortedRun::build(
            entries(1000),
            FilterKind::Bloom,
            0.01,
            RangeFilterKind::None,
            io.clone(),
        );
        io.reset();
        assert_eq!(r.get(500), Some(50));
        assert_eq!(io.reads(), 1, "one block read per positive lookup");
        assert_eq!(r.get(505), None);
        // Filter negative: no extra read (with high probability).
        assert!(io.reads() <= 2);
    }

    #[test]
    fn filterless_run_pays_io_on_miss() {
        let io = IoCounter::new();
        let r = SortedRun::build(
            entries(1000),
            FilterKind::None,
            0.01,
            RangeFilterKind::None,
            io.clone(),
        );
        io.reset();
        assert_eq!(r.get(505), None);
        assert_eq!(io.reads(), 1, "miss without filter must cost a read");
    }

    #[test]
    fn scan_respects_range_filter() {
        let io = IoCounter::new();
        let r = SortedRun::build(
            entries(1000),
            FilterKind::None,
            0.01,
            RangeFilterKind::Grafite {
                l_bits: 8,
                eps: 0.01,
            },
            io.clone(),
        );
        io.reset();
        let mut out = Vec::new();
        // Empty gap between consecutive keys.
        r.scan(501, 505, &mut out);
        assert!(out.is_empty());
        assert_eq!(io.reads(), 0, "range filter should prove emptiness");
        r.scan(500, 520, &mut out);
        assert_eq!(out, vec![(500, 50), (510, 51), (520, 52)]);
        assert!(io.reads() >= 1);
    }

    #[test]
    fn fences_rule_out_out_of_range_keys_free() {
        let io = IoCounter::new();
        let r = SortedRun::build(
            entries(100),
            FilterKind::None,
            0.01,
            RangeFilterKind::None,
            io.clone(),
        );
        io.reset();
        assert_eq!(r.get(1_000_000), None);
        assert_eq!(io.reads(), 0);
    }
}
