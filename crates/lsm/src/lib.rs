//! # lsm
//!
//! A mini LSM-tree storage engine reproducing the tutorial's §3.1
//! case studies with **simulated I/O accounting** (the paper's claims
//! are about I/O counts, not device latency — see DESIGN.md):
//!
//! - pluggable per-run point filters ([`FilterKind`]): Bloom, XOR,
//!   ribbon, quotient, cuckoo — immutable runs make static filters
//!   applicable, the tutorial's §2.7 observation;
//! - [`FprAllocation::Monkey`]: exponentially tightened FPRs for
//!   smaller levels (Dayan et al.), dropping lookup cost from
//!   `O(ε·lg N)` to `O(ε)` I/Os;
//! - [`IndexMode::GlobalMaplet`]: one Chucky/SlimDB-style maplet
//!   mapping keys to runs instead of per-run filters;
//! - [`RangeFilterKind::Grafite`]: per-run range filters that prove
//!   range emptiness without I/O.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cascade;
pub mod io;
pub mod join;
pub mod policy;
pub mod run;
pub mod tree;

pub use cascade::CascadeFilter;
pub use io::IoCounter;
pub use join::{bloom_join, filtered_join, JoinStats};
pub use policy::{FilterKind, FprAllocation};
pub use run::{RangeFilterKind, SortedRun, BLOCK_ENTRIES};
pub use tree::{CompactionPolicy, GlobalRangeConfig, IndexMode, LsmConfig, LsmTree, TOMBSTONE};
