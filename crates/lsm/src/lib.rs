//! # lsm
//!
//! A mini LSM-tree storage engine reproducing the tutorial's §3.1
//! case studies with **simulated I/O accounting** (the paper's claims
//! are about I/O counts, not device latency — see DESIGN.md):
//!
//! - pluggable per-run point filters ([`FilterKind`]): Bloom, XOR,
//!   ribbon, quotient, cuckoo — immutable runs make static filters
//!   applicable, the tutorial's §2.7 observation;
//! - [`FprAllocation::Monkey`]: exponentially tightened FPRs for
//!   smaller levels (Dayan et al.), dropping lookup cost from
//!   `O(ε·lg N)` to `O(ε)` I/Os;
//! - [`IndexMode::GlobalMaplet`]: one Chucky/SlimDB-style maplet
//!   mapping keys to runs instead of per-run filters;
//! - [`RangeFilterKind::Grafite`]: per-run range filters that prove
//!   range emptiness without I/O.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cascade;
pub mod io;
pub mod join;
pub mod policy;
pub mod run;
pub mod tree;

use telemetry::StaticCounter;

/// Simulated block reads across every [`IoCounter`] in the process.
pub static LSM_IO_READS: StaticCounter = StaticCounter::new(
    "bb_lsm_io_reads_total",
    "Simulated block reads across all LSM I/O counters.",
);

/// Simulated block writes across every [`IoCounter`] in the process.
pub static LSM_IO_WRITES: StaticCounter = StaticCounter::new(
    "bb_lsm_io_writes_total",
    "Simulated block writes across all LSM I/O counters.",
);

/// Eagerly register this crate's metric families so they render in
/// the exposition even before any traffic touches them.
pub fn register_metrics() {
    LSM_IO_READS.register();
    LSM_IO_WRITES.register();
}

pub use cascade::CascadeFilter;
pub use io::IoCounter;
pub use join::{bloom_join, filtered_join, JoinStats};
pub use policy::{fp_bits_for, FilterKind, FprAllocation};
pub use run::{RangeFilterKind, SortedRun, BLOCK_ENTRIES};
pub use tree::{CompactionPolicy, GlobalRangeConfig, IndexMode, LsmConfig, LsmTree, TOMBSTONE};
