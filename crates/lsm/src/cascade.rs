//! The cascade filter — "how to cache your hash on flash" (Bender et
//! al., VLDB 2012), the mechanism behind the tutorial's claim that
//! quotient filters "efficiently scale out of RAM" (§1, feature 1).
//!
//! A small in-RAM buffer absorbs insertions; when it fills, its
//! fingerprints are flushed as an immutable sorted *filter run* on
//! storage, and runs are merged LSM-style as they accumulate. Inserts
//! therefore cost amortized `O(1/B)` I/Os (pure sequential writes),
//! while lookups probe the buffer for free plus one block read per
//! overlapping run — versus a single big storage-resident filter
//! where *every* insert and lookup pays a random I/O.
//!
//! Substitution note (see DESIGN.md): the paper stores each level as
//! an on-flash quotient filter; here levels are sorted fingerprint
//! arrays with in-RAM fence pointers, which have the same I/O
//! geometry (1 block read per probed level, sequential merges) and
//! the same false-positive semantics (`p`-bit fingerprints).

use crate::io::IoCounter;
use filter_core::Hasher;
use std::collections::BTreeSet;

/// Fingerprints per storage block.
const BLOCK_FPS: usize = 512;

/// One immutable sorted fingerprint run on storage.
#[derive(Debug, Clone)]
struct FilterRun {
    fps: Vec<u64>,
    /// First fingerprint of each block (fence pointers, in RAM).
    fences: Vec<u64>,
}

impl FilterRun {
    fn build(fps: Vec<u64>, io: &IoCounter) -> Self {
        debug_assert!(fps.windows(2).all(|w| w[0] <= w[1]));
        io.write(fps.len().div_ceil(BLOCK_FPS) as u64);
        let fences = fps.chunks(BLOCK_FPS).map(|b| b[0]).collect();
        FilterRun { fps, fences }
    }

    /// One block read unless fences rule the fingerprint out.
    fn contains(&self, fp: u64, io: &IoCounter) -> bool {
        if self.fps.is_empty() || fp < self.fps[0] || fp > *self.fps.last().unwrap() {
            return false;
        }
        io.read(1);
        let block = self.fences.partition_point(|&f| f <= fp) - 1;
        let start = block * BLOCK_FPS;
        let end = (start + BLOCK_FPS).min(self.fps.len());
        self.fps[start..end].binary_search(&fp).is_ok()
    }

    /// Sequential scan for merging (block reads).
    fn drain(&self, io: &IoCounter) -> &[u64] {
        io.read(self.fps.len().div_ceil(BLOCK_FPS) as u64);
        &self.fps
    }
}

/// A storage-resident approximate-membership structure with an in-RAM
/// insert buffer.
#[derive(Debug)]
pub struct CascadeFilter {
    /// In-RAM buffer (exact fingerprint set; the paper uses a RAM QF).
    buffer: BTreeSet<u64>,
    buffer_capacity: usize,
    /// Storage runs, newest first, merged when `size_ratio` of equal
    /// rank accumulate.
    runs: Vec<FilterRun>,
    size_ratio: usize,
    fp_bits: u32,
    hasher: Hasher,
    io: IoCounter,
    items: usize,
}

impl CascadeFilter {
    /// Create with an in-RAM buffer of `buffer_capacity` fingerprints
    /// and `fp_bits`-bit fingerprints (FPR ≈ n·2^-fp_bits).
    pub fn new(buffer_capacity: usize, fp_bits: u32) -> Self {
        Self::with_seed(buffer_capacity, fp_bits, 0)
    }

    /// As [`CascadeFilter::new`] with an explicit fingerprint-hash
    /// seed (shards of a sharded cascade decorrelate through this).
    pub fn with_seed(buffer_capacity: usize, fp_bits: u32, seed: u64) -> Self {
        assert!(buffer_capacity >= 16);
        assert!((16..=62).contains(&fp_bits));
        CascadeFilter {
            buffer: BTreeSet::new(),
            buffer_capacity,
            runs: Vec::new(),
            size_ratio: 4,
            fp_bits,
            hasher: Hasher::with_seed(seed),
            io: IoCounter::new(),
            items: 0,
        }
    }

    /// A thread-safe cascade filter: `2^shard_bits` independent
    /// cascades behind per-shard locks, splitting the RAM budget.
    ///
    /// Each shard owns a buffer of `buffer_capacity >> shard_bits`
    /// fingerprints and its own simulated-storage runs, so flushes and
    /// merges in one shard never block operations on the others — the
    /// same partitioning the tutorial's thread-scalable on-flash
    /// filters use. Shard selection (see the `concurrent` crate docs)
    /// is disjoint from the fingerprint hash by construction.
    pub fn sharded(
        buffer_capacity: usize,
        fp_bits: u32,
        shard_bits: u32,
    ) -> concurrent::Sharded<CascadeFilter> {
        concurrent::Sharded::new(shard_bits, |i| {
            CascadeFilter::with_seed(
                (buffer_capacity >> shard_bits).max(16),
                fp_bits,
                0xca5c ^ i as u64,
            )
        })
    }

    /// The simulated-storage I/O counter.
    pub fn io(&self) -> &IoCounter {
        &self.io
    }

    #[inline]
    fn fingerprint(&self, key: u64) -> u64 {
        self.hasher.hash(&key) & filter_core::rem_mask(self.fp_bits)
    }

    /// Insert a key. Costs zero I/O until the buffer flushes.
    pub fn insert(&mut self, key: u64) {
        self.buffer.insert(self.fingerprint(key));
        self.items += 1;
        if self.buffer.len() >= self.buffer_capacity {
            self.flush();
        }
    }

    /// Flush the buffer to a new storage run and merge as needed.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let fps: Vec<u64> = std::mem::take(&mut self.buffer).into_iter().collect();
        self.runs.insert(0, FilterRun::build(fps, &self.io));
        // Merge the newest `size_ratio` runs whenever runs of similar
        // size pile up (size-tiered).
        while self.runs.len() >= 2 {
            let smallest = self.runs.iter().map(|r| r.fps.len()).min().unwrap();
            let small_runs = self
                .runs
                .iter()
                .filter(|r| r.fps.len() < smallest * self.size_ratio)
                .count();
            if small_runs < self.size_ratio {
                break;
            }
            // Merge every run below the threshold into one.
            let (mut merge, keep): (Vec<FilterRun>, Vec<FilterRun>) =
                std::mem::take(&mut self.runs)
                    .into_iter()
                    .partition(|r| r.fps.len() < smallest * self.size_ratio);
            let mut merged: Vec<u64> = Vec::new();
            for r in merge.drain(..) {
                merged.extend_from_slice(r.drain(&self.io));
            }
            merged.sort_unstable();
            merged.dedup();
            self.runs = keep;
            self.runs.push(FilterRun::build(merged, &self.io));
            self.runs.sort_by_key(|r| std::cmp::Reverse(r.fps.len()));
            // Loop: the merged run may itself complete a cohort one
            // rank up (cascading merge).
        }
    }

    /// Membership query: buffer probe is free; each overlapping
    /// storage run costs at most one block read.
    pub fn contains(&self, key: u64) -> bool {
        let fp = self.fingerprint(key);
        if self.buffer.contains(&fp) {
            return true;
        }
        self.runs.iter().any(|r| r.contains(fp, &self.io))
    }

    /// Keys inserted.
    pub fn len(&self) -> usize {
        self.items
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Storage runs currently live.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// RAM bytes (buffer only; runs live on storage).
    pub fn ram_bytes(&self) -> usize {
        self.buffer.len() * 8 + self.runs.iter().map(|r| r.fences.len() * 8).sum::<usize>()
    }

    /// Storage bytes across all runs.
    pub fn storage_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.fps.len() * 8).sum()
    }
}

impl filter_core::Filter for CascadeFilter {
    fn contains(&self, key: u64) -> bool {
        CascadeFilter::contains(self, key)
    }

    fn len(&self) -> usize {
        CascadeFilter::len(self)
    }

    /// RAM plus simulated-storage bytes — the total footprint, unlike
    /// [`CascadeFilter::ram_bytes`] which reports the residency the
    /// cascade is designed to minimise.
    fn size_in_bytes(&self) -> usize {
        self.ram_bytes() + self.storage_bytes()
    }
}

impl filter_core::InsertFilter for CascadeFilter {
    fn insert(&mut self, key: u64) -> filter_core::Result<()> {
        CascadeFilter::insert(self, key);
        Ok(())
    }
}

/// Default (scalar) batch implementation: a cascade query's cost is
/// dominated by simulated-storage I/O, not cache misses, so there is
/// no prefetch kernel — but the impl lets `Sharded<CascadeFilter>`
/// use the one-lock-per-shard batched membership path.
impl filter_core::BatchedFilter for CascadeFilter {}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{disjoint_keys, unique_keys};

    #[test]
    fn no_false_negatives_across_flushes() {
        let keys = unique_keys(600, 50_000);
        let mut f = CascadeFilter::new(1_024, 40);
        for &k in &keys {
            f.insert(k);
        }
        assert!(keys.iter().all(|&k| f.contains(k)));
        assert!(f.run_count() >= 2, "{} runs", f.run_count());
    }

    #[test]
    fn fpr_is_tiny_with_40bit_fps() {
        let keys = unique_keys(601, 50_000);
        let mut f = CascadeFilter::new(1_024, 40);
        for &k in &keys {
            f.insert(k);
        }
        let neg = disjoint_keys(602, 50_000, &keys);
        let fps = neg.iter().filter(|&&k| f.contains(k)).count();
        assert!(fps <= 2, "{fps} false positives");
    }

    #[test]
    fn insert_io_is_amortized_sequential() {
        let keys = unique_keys(603, 100_000);
        let mut f = CascadeFilter::new(4_096, 40);
        for &k in &keys {
            f.insert(k);
        }
        f.flush();
        // Writes: each key is rewritten once per merge generation —
        // O(log_T n / B) per key, far below 1 I/O per insert.
        let per_insert = f.io().writes() as f64 / keys.len() as f64;
        assert!(per_insert < 0.1, "write I/O per insert {per_insert}");
    }

    #[test]
    fn query_io_bounded_by_runs() {
        let keys = unique_keys(604, 50_000);
        let mut f = CascadeFilter::new(1_024, 40);
        for &k in &keys {
            f.insert(k);
        }
        f.flush();
        f.io().reset();
        let neg = disjoint_keys(605, 10_000, &keys);
        for &k in &neg {
            f.contains(k);
        }
        let per_query = f.io().reads() as f64 / 10_000.0;
        assert!(
            per_query <= f.run_count() as f64,
            "{per_query} reads/query over {} runs",
            f.run_count()
        );
    }

    #[test]
    fn filter_traits_match_inherent_api() {
        use filter_core::{Filter, InsertFilter};
        let keys = unique_keys(607, 20_000);
        let mut f = CascadeFilter::new(1_024, 40);
        {
            let dynf: &mut dyn InsertFilter = &mut f;
            for &k in &keys {
                dynf.insert(k).unwrap();
            }
        }
        let dynf: &dyn Filter = &f;
        assert!(keys.iter().all(|&k| dynf.contains(k)));
        assert_eq!(dynf.len(), 20_000);
        assert!(dynf.size_in_bytes() >= f.ram_bytes());
    }

    #[test]
    fn sharded_cascade_concurrent_inserts() {
        let f = CascadeFilter::sharded(4_096, 40, 2);
        let keys = unique_keys(608, 80_000);
        std::thread::scope(|s| {
            for chunk in keys.chunks(20_000) {
                let f = &f;
                s.spawn(move || f.insert_batch(chunk).unwrap());
            }
        });
        assert!(f.contains_batch(&keys).iter().all(|&b| b));
        assert_eq!(f.len(), 80_000);
        let neg = disjoint_keys(609, 20_000, &keys);
        let fps = neg.iter().filter(|&&k| f.contains(k)).count();
        assert!(fps <= 2, "{fps} false positives");
    }

    #[test]
    fn ram_footprint_stays_near_buffer() {
        let keys = unique_keys(606, 200_000);
        let mut f = CascadeFilter::new(2_048, 40);
        for &k in &keys {
            f.insert(k);
        }
        // Buffer + fences only: orders below 200k × 8 bytes.
        assert!(
            f.ram_bytes() < 64 * 1024,
            "RAM {} bytes for 200k keys",
            f.ram_bytes()
        );
    }
}
