//! Per-run filter policies: which point filter guards each run and
//! how false-positive budget is allocated across levels.

use filter_core::{Filter, InsertFilter};

/// The point-filter family guarding each run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// No filters: every lookup probes every overlapping run.
    None,
    /// Classic Bloom filter (the LSM default the tutorial describes).
    Bloom,
    /// Static XOR filter (valid because runs are immutable — the
    /// tutorial's point that *any* static filter applies here).
    Xor,
    /// Static ribbon filter (space-premium option, as in RocksDB).
    Ribbon,
    /// Dynamic quotient filter (overkill for immutable runs; included
    /// for the comparison).
    Quotient,
    /// Cuckoo filter.
    Cuckoo,
}

/// How FPR is allocated across levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FprAllocation {
    /// Same `eps` for every run (the traditional design).
    Uniform(f64),
    /// Monkey (Dayan et al., SIGMOD 2017): exponentially *smaller*
    /// FPR for smaller (lower) levels, so the sum of FPRs converges
    /// and point-lookup cost drops from `O(ε·lg N)` to `O(ε)` I/Os.
    /// The parameter is the FPR of the largest level; level `i`
    /// (counting up from the largest) gets `eps · ratio^-i`.
    Monkey {
        /// FPR assigned to the largest (bottom) level.
        base_eps: f64,
        /// Per-level tightening factor (usually the size ratio).
        ratio: f64,
    },
}

impl FprAllocation {
    /// The FPR for a run of `run_len` entries in a tree currently
    /// holding `total_len` entries.
    ///
    /// Monkey's optimum sets `eps_i ∝ n_i` (smaller runs get
    /// exponentially smaller FPRs as levels shrink by the size
    /// ratio). Deriving it from the run's *size* rather than its
    /// level position keeps the allocation stable as the tree grows —
    /// a run built early never carries a stale budget. `ratio` only
    /// caps how far below `base_eps` tiny runs may go.
    pub fn eps_for_run(&self, run_len: usize, total_len: usize) -> f64 {
        match *self {
            FprAllocation::Uniform(e) => e,
            FprAllocation::Monkey { base_eps, ratio } => {
                let frac = run_len as f64 / total_len.max(1) as f64;
                let floor = base_eps / ratio.powi(12);
                (base_eps * frac).clamp(floor.max(1e-9), base_eps)
            }
        }
    }
}

/// A built run filter (static families are constructed from the run's
/// key set; dynamic families are filled by insertion).
pub fn build_filter(kind: FilterKind, keys: &[u64], eps: f64) -> Option<Box<dyn Filter>> {
    let n = keys.len().max(1);
    match kind {
        FilterKind::None => None,
        FilterKind::Bloom => {
            let mut f = bloom::BloomFilter::new(n, eps);
            for &k in keys {
                f.insert(k).expect("bloom insert");
            }
            Some(Box::new(f))
        }
        FilterKind::Xor => {
            let bits = fp_bits_for(eps);
            Some(Box::new(
                xorf::XorFilter::build(keys, bits).expect("xor build"),
            ))
        }
        FilterKind::Ribbon => {
            let bits = fp_bits_for(eps);
            Some(Box::new(
                ribbon::RibbonFilter::build(keys, bits).expect("ribbon build"),
            ))
        }
        FilterKind::Quotient => {
            let mut f = quotient::QuotientFilter::for_capacity(n, eps);
            for &k in keys {
                f.insert(k).expect("qf insert");
            }
            Some(Box::new(f))
        }
        FilterKind::Cuckoo => {
            let bits = (fp_bits_for(eps) + 3).min(32); // 2b/2^f correction
            let mut f = cuckoo::CuckooFilter::new(n, bits);
            for &k in keys {
                f.insert(k).expect("cuckoo insert");
            }
            Some(Box::new(f))
        }
    }
}

/// Fingerprint bits achieving FPR ≈ `eps` (shared with the
/// `compacting` crate's static fuse tiers).
pub fn fp_bits_for(eps: f64) -> u32 {
    ((1.0 / eps).log2().ceil() as u32).clamp(2, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monkey_tightens_small_runs() {
        let m = FprAllocation::Monkey {
            base_eps: 0.02,
            ratio: 4.0,
        };
        // The largest run gets the base budget.
        assert!((m.eps_for_run(1000, 1000) - 0.02).abs() < 1e-12);
        // A run 4x smaller gets a 4x tighter budget.
        assert!((m.eps_for_run(250, 1000) - 0.005).abs() < 1e-12);
        assert!(m.eps_for_run(10, 1000) < m.eps_for_run(100, 1000));
        // Uniform ignores size.
        assert_eq!(FprAllocation::Uniform(0.01).eps_for_run(1, 1000), 0.01);
    }

    #[test]
    fn all_kinds_build_and_filter() {
        let keys = workloads::unique_keys(260, 2_000);
        for kind in [
            FilterKind::Bloom,
            FilterKind::Xor,
            FilterKind::Ribbon,
            FilterKind::Quotient,
            FilterKind::Cuckoo,
        ] {
            let f = build_filter(kind, &keys, 0.01).expect("filter built");
            assert!(keys.iter().all(|&k| f.contains(k)), "{kind:?} lost a key");
        }
        assert!(build_filter(FilterKind::None, &keys, 0.01).is_none());
    }
}
