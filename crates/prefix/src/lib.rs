//! # prefix-filter
//!
//! The Prefix filter (Even, Even, Morrison, VLDB 2022) — the
//! tutorial's modern *semi-dynamic* filter (§2): insertions without
//! knowing the key set, no deletions, and one cache line per
//! operation in the common case.
//!
//! Keys hash into fixed-capacity *bins* of sorted fingerprints. A bin
//! that fills marks itself overflowed; later arrivals for that bin
//! go to a small dynamic *spare* (here a quotient filter sized for a
//! few percent of n). Queries probe the bin and, only when it is
//! marked overflowed, the spare — so most negative queries cost one
//! bin scan.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use filter_core::{BitVec, Filter, FilterError, Hasher, InsertFilter, PackedArray, Result};
use quotient::QuotientFilter;

/// Fingerprints per bin (the paper's pocket dictionaries hold ~25).
const BIN_CAPACITY: usize = 25;

/// A semi-dynamic prefix filter.
#[derive(Debug, Clone)]
pub struct PrefixFilter {
    /// `bins × BIN_CAPACITY` fingerprint slots (0 = empty; stored
    /// fingerprints forced nonzero).
    slots: PackedArray,
    /// Per-bin occupancy.
    counts: Vec<u8>,
    /// Bin-overflowed flags.
    overflowed: BitVec,
    spare: QuotientFilter,
    n_bins: usize,
    fp_bits: u32,
    hasher: Hasher,
    items: usize,
}

impl PrefixFilter {
    /// Create for `capacity` keys with `fp_bits`-bit fingerprints.
    pub fn new(capacity: usize, fp_bits: u32) -> Self {
        Self::with_seed(capacity, fp_bits, 0)
    }

    /// As [`PrefixFilter::new`] with an explicit seed.
    pub fn with_seed(capacity: usize, fp_bits: u32, seed: u64) -> Self {
        assert!(capacity > 0);
        assert!((4..=32).contains(&fp_bits));
        // Bins sized so the *average* load is ~90% of capacity; the
        // binomial tail that overflows lands in the spare.
        let n_bins = ((capacity as f64 / (BIN_CAPACITY as f64 * 0.90)).ceil() as usize).max(1);
        // Spare sized for ~6% of keys.
        let spare_q = (((capacity / 12).max(64))
            .next_power_of_two()
            .trailing_zeros())
        .max(4);
        PrefixFilter {
            slots: PackedArray::new(n_bins * BIN_CAPACITY, fp_bits),
            counts: vec![0; n_bins],
            overflowed: BitVec::new(n_bins),
            spare: QuotientFilter::with_seed(spare_q, fp_bits.min(60 - spare_q), seed ^ 0xabcd),
            n_bins,
            fp_bits,
            hasher: Hasher::with_seed(seed),
            items: 0,
        }
    }

    #[inline]
    fn bin_and_fp(&self, key: u64) -> (usize, u64) {
        let h = self.hasher.hash(&key);
        let bin = (h % self.n_bins as u64) as usize;
        let fp = (h >> 32) & filter_core::rem_mask(self.fp_bits);
        (bin, if fp == 0 { 1 } else { fp })
    }

    fn bin_contains(&self, bin: usize, fp: u64) -> bool {
        let base = bin * BIN_CAPACITY;
        (0..self.counts[bin] as usize).any(|s| self.slots.get(base + s) == fp)
    }

    /// Fraction of keys that spilled to the spare (diagnostic).
    pub fn spare_fraction(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.spare.len() as f64 / self.items as f64
        }
    }
}

impl Filter for PrefixFilter {
    fn contains(&self, key: u64) -> bool {
        let (bin, fp) = self.bin_and_fp(key);
        if self.bin_contains(bin, fp) {
            return true;
        }
        self.overflowed.get(bin) && self.spare.contains(key)
    }

    fn len(&self) -> usize {
        self.items
    }

    fn size_in_bytes(&self) -> usize {
        self.slots.size_in_bytes()
            + self.counts.len()
            + self.overflowed.size_in_bytes()
            + self.spare.size_in_bytes()
    }
}

impl InsertFilter for PrefixFilter {
    fn insert(&mut self, key: u64) -> Result<()> {
        let (bin, fp) = self.bin_and_fp(key);
        let c = self.counts[bin] as usize;
        if c < BIN_CAPACITY {
            self.slots.set(bin * BIN_CAPACITY + c, fp);
            self.counts[bin] = (c + 1) as u8;
            self.items += 1;
            return Ok(());
        }
        self.overflowed.set(bin);
        match self.spare.insert(key) {
            Ok(()) => {
                self.items += 1;
                Ok(())
            }
            Err(_) => Err(FilterError::CapacityExceeded),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{disjoint_keys, unique_keys};

    #[test]
    fn no_false_negatives() {
        let keys = unique_keys(140, 50_000);
        let mut f = PrefixFilter::new(50_000, 12);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        assert!(keys.iter().all(|&k| f.contains(k)));
    }

    #[test]
    fn fpr_bounded_by_bin_scan() {
        let keys = unique_keys(141, 50_000);
        let mut f = PrefixFilter::new(50_000, 12);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let neg = disjoint_keys(142, 100_000, &keys);
        let fpr = neg.iter().filter(|&&k| f.contains(k)).count() as f64 / 100_000.0;
        // ≈ BIN_CAPACITY · 2⁻¹² ≈ 0.6% plus spare noise.
        assert!(fpr < 0.02, "fpr {fpr}");
    }

    #[test]
    fn only_a_small_fraction_spills_to_spare() {
        let keys = unique_keys(143, 100_000);
        let mut f = PrefixFilter::new(100_000, 12);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        assert!(
            f.spare_fraction() < 0.12,
            "spare fraction {}",
            f.spare_fraction()
        );
    }

    #[test]
    fn spare_probed_only_for_overflowed_bins() {
        // Structural property behind the one-cache-miss claim: bins
        // that never overflowed answer negatives without consulting
        // the spare.
        let mut f = PrefixFilter::new(50_000, 12);
        let keys = unique_keys(145, 10_000); // 20% of capacity
        for &k in &keys {
            f.insert(k).unwrap();
        }
        // At 20% of rated capacity, overflow is essentially
        // impossible: nothing should have reached the spare.
        assert_eq!(f.spare_fraction(), 0.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let keys = unique_keys(146, 5_000);
        let probes = disjoint_keys(147, 10_000, &keys);
        let build = |seed| {
            let mut f = PrefixFilter::with_seed(5_000, 12, seed);
            for &k in &keys {
                f.insert(k).unwrap();
            }
            probes.iter().map(|&k| f.contains(k)).collect::<Vec<_>>()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }

    #[test]
    fn handles_overfill_gracefully() {
        let mut f = PrefixFilter::new(1_000, 12);
        let mut ok = 0usize;
        for k in workloads::KeyStream::new(144).take(50_000) {
            match f.insert(k) {
                Ok(()) => ok += 1,
                Err(FilterError::CapacityExceeded) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(ok >= 1_000, "filter refused before rated capacity: {ok}");
    }
}
