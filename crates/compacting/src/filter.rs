//! The compacting filter: a mutable Bloom front, immutable fuse back
//! tiers, and the background thread that moves keys between them.
//!
//! ## Lifecycle
//!
//! ```text
//! insert ──▶ front (AtomicBlockedBloom + key log)
//!               │ full (or flush)
//!               ▼ seal: O(tiers) epoch swap
//!            sealed fronts ──▶ [compactor thread] ──▶ fuse tier
//!                                sort + dedup + build      │
//!                                (outside every lock)      ▼
//!            lookups fan across front ∪ sealed ∪ tiers (newest first)
//! ```
//!
//! ## Epoch-swap safety
//!
//! All structure lives in an immutable [`State`] behind
//! `RwLock<Arc<State>>`. Readers clone the `Arc` (one read-lock
//! acquisition, no allocation) and probe a frozen snapshot; writers
//! (seal, tier install) build the next `State` *outside* the lock and
//! publish it with a single store. The write critical sections copy
//! `O(tiers)` `Arc` pointers — they never hash a key or build a
//! filter — so lookups never block on compaction.
//!
//! No false negatives across rotations:
//!
//! - **insert vs. reader**: the key enters the front's Bloom *before*
//!   `insert` returns, so any lookup that begins after an insert
//!   completes sees it.
//! - **insert vs. seal**: inserts append to the front's key log under
//!   the log mutex; seal marks the log sealed under the same mutex.
//!   An insert therefore lands either wholly in the sealed front
//!   (bloom + log) or retries against the fresh front — a key can
//!   never hit the Bloom of one front and the log of another.
//! - **seal / install vs. reader**: both transitions replace the
//!   published `Arc<State>` in one store. Every key is present in the
//!   old snapshot (sealed front) and in the new one (sealed front or
//!   rebuilt tier); there is no intermediate state with the key in
//!   neither.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;

use bloom::AtomicBlockedBloomFilter;
use filter_core::hash::mix64;
use filter_core::{BatchedFilter, ByteReader, ByteWriter, Filter, SerialError, PROBE_CHUNK};
use lsm::{fp_bits_for, CompactionPolicy, FprAllocation};
use telemetry::EventKind;
use xorf::{BinaryFuseFilter, FuseArity};

/// Snapshot-serialization magic.
const MAGIC: u32 = 0xc0ab_ac71;

/// Configuration for a [`CompactingFilter`].
#[derive(Debug, Clone, Copy)]
pub struct CompactingConfig {
    /// Keys the mutable front absorbs before it is sealed and handed
    /// to the background compactor.
    pub front_capacity: usize,
    /// Target FPR of the mutable front (and the default tier budget).
    pub eps: f64,
    /// Arity of the static fuse tiers (4-wise is ~5% smaller).
    pub arity: FuseArity,
    /// Per-tier FPR budget; [`FprAllocation::Monkey`] tightens small
    /// tiers so the fan-out FPR sum converges.
    pub allocation: FprAllocation,
    /// Merge shape: [`CompactionPolicy::Leveled`] rebuilds one big
    /// tier every compaction, [`CompactionPolicy::Tiered`] only folds
    /// in tiers no larger than the accumulated batch, and
    /// [`CompactionPolicy::LazyLeveled`] runs tiered until
    /// [`max_tiers`](CompactingConfig::max_tiers) is exceeded, then
    /// collapses to one.
    pub policy: CompactionPolicy,
    /// Tier-count bound for [`CompactionPolicy::LazyLeveled`].
    pub max_tiers: usize,
    /// Base hash seed (rotated per epoch for fronts and tiers).
    pub seed: u64,
}

impl CompactingConfig {
    /// A sensible default shape: `front_capacity` keys per memtable at
    /// `eps`, 4-wise fuse tiers with a uniform `eps` budget, lazy
    /// leveling capped at 8 tiers.
    pub fn new(front_capacity: usize, eps: f64, seed: u64) -> Self {
        CompactingConfig {
            front_capacity,
            eps,
            arity: FuseArity::Four,
            allocation: FprAllocation::Uniform(eps),
            policy: CompactionPolicy::LazyLeveled,
            max_tiers: 8,
            seed,
        }
    }

    fn validate(&self) -> Result<(), SerialError> {
        if self.front_capacity == 0 || self.max_tiers == 0 {
            return Err(SerialError::Corrupt("compacting config zero"));
        }
        if !(self.eps > 0.0 && self.eps <= 0.5) {
            return Err(SerialError::Corrupt("compacting eps"));
        }
        Ok(())
    }
}

/// The mutable memtable: a wait-free Bloom for lookups plus the exact
/// key log the compactor will drain (the log stands in for the WAL /
/// on-disk run an LSM would keep — see DESIGN.md's accounting note).
#[derive(Debug)]
struct Front {
    bloom: AtomicBlockedBloomFilter,
    log: Mutex<FrontLog>,
}

#[derive(Debug)]
struct FrontLog {
    keys: Vec<u64>,
    sealed: bool,
    /// Trace handoff captured at seal time on the sealing thread: if
    /// the seal happened inside a traced request, the background
    /// compaction that drains this front records a span linked back
    /// to that request's trace.
    handoff: Option<telemetry::trace::SpanHandoff>,
}

impl Front {
    fn new(cfg: &CompactingConfig, epoch: u64) -> Front {
        Front {
            bloom: AtomicBlockedBloomFilter::with_seed(
                cfg.front_capacity,
                cfg.eps,
                cfg.seed ^ mix64(epoch.wrapping_mul(2)),
            ),
            log: Mutex::new(FrontLog {
                keys: Vec::with_capacity(cfg.front_capacity),
                sealed: false,
                handoff: None,
            }),
        }
    }
}

/// One immutable back tier: a static fuse filter plus its sorted,
/// deduplicated key set (the stand-in for the run the filter guards).
#[derive(Debug)]
struct Tier {
    filter: BinaryFuseFilter,
    keys: Vec<u64>,
}

/// The published structure. Immutable once installed; transitions
/// build a successor and swap the `Arc`.
#[derive(Debug)]
struct State {
    front: Arc<Front>,
    /// Sealed fronts awaiting compaction, oldest first.
    sealed: Vec<Arc<Front>>,
    /// Static tiers, oldest (largest) first.
    tiers: Vec<Arc<Tier>>,
}

/// Worker-thread mailbox (guarded by `Inner::sync`, signalled through
/// `Inner::cv`; lock order is `sync` → `state` → front log).
#[derive(Debug)]
struct WorkerSync {
    /// Sealed fronts not yet drained into a tier.
    pending: usize,
    /// A full collapse (every tier into one) was requested.
    full_requested: bool,
    shutdown: bool,
}

#[derive(Debug)]
struct Inner {
    cfg: CompactingConfig,
    state: RwLock<Arc<State>>,
    epoch: AtomicU64,
    seals: AtomicU64,
    compactions: AtomicU64,
    failed_compactions: AtomicU64,
    sync: Mutex<WorkerSync>,
    cv: Condvar,
}

/// Observability snapshot (see [`CompactingFilter::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactingStats {
    /// Keys in the mutable front's log.
    pub front_keys: usize,
    /// Sealed fronts awaiting background compaction.
    pub sealed_fronts: usize,
    /// Live static fuse tiers.
    pub tiers: usize,
    /// Keys held across all static tiers.
    pub tier_keys: usize,
    /// Fronts sealed over the filter's lifetime.
    pub seals: u64,
    /// Background compactions completed.
    pub compactions: u64,
    /// Compactions abandoned by fuse-construction failure.
    pub failed_compactions: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// # Examples
///
/// ```
/// use compacting::{CompactingConfig, CompactingFilter};
/// use filter_core::Filter;
///
/// let f = CompactingFilter::new(CompactingConfig::new(1024, 1.0 / 256.0, 7));
/// for k in 0..5_000u64 {
///     f.insert(k);
/// }
/// f.flush(); // drain every sealed front into static tiers
/// assert!((0..5_000).all(|k| f.contains(k)));
/// ```
///
/// A filter LSM: wait-free inserts into a Bloom front, background
/// compaction into binary fuse tiers, lookups fanned across both.
#[derive(Debug)]
pub struct CompactingFilter {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

impl CompactingFilter {
    /// Create an empty filter and start its compaction thread.
    pub fn new(cfg: CompactingConfig) -> Self {
        assert!(cfg.front_capacity > 0, "front_capacity must be positive");
        assert!(cfg.eps > 0.0 && cfg.eps <= 0.5, "eps must be in (0, 0.5]");
        assert!(cfg.max_tiers > 0, "max_tiers must be positive");
        let inner = Arc::new(Inner {
            state: RwLock::new(Arc::new(State {
                front: Arc::new(Front::new(&cfg, 0)),
                sealed: Vec::new(),
                tiers: Vec::new(),
            })),
            cfg,
            epoch: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            failed_compactions: AtomicU64::new(0),
            sync: Mutex::new(WorkerSync {
                pending: 0,
                full_requested: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let w = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("bb-compactor".into())
            .spawn(move || worker_loop(&w))
            .expect("spawn compaction thread");
        CompactingFilter {
            inner,
            worker: Some(worker),
        }
    }

    /// Insert `key`. Wait-free against lookups and background
    /// compaction; may seal the front (an `O(tiers)` swap) when it
    /// reaches capacity.
    pub fn insert(&self, key: u64) {
        let inner = &*self.inner;
        loop {
            let front = Arc::clone(&inner.snapshot().front);
            let mut log = lock(&front.log);
            if log.sealed {
                // Raced with a seal: the published front has already
                // moved on; retry against the fresh snapshot.
                continue;
            }
            // Bloom before log, both under the log lock: a concurrent
            // reader sees the key as soon as we return, and a seal
            // (which takes this lock) can never split the pair.
            front.bloom.insert(key);
            log.keys.push(key);
            let full = log.keys.len() >= inner.cfg.front_capacity;
            drop(log);
            if full {
                inner.seal();
            }
            return;
        }
    }

    /// Seal the current front (if non-empty) and block until the
    /// background thread has drained every sealed front into tiers.
    pub fn flush(&self) {
        let inner = &*self.inner;
        inner.seal();
        let mut s = lock(&inner.sync);
        while s.pending > 0 {
            s = inner.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Seal the front and collapse *everything* — sealed fronts and
    /// all existing tiers — into a single fuse tier, blocking until
    /// done. This is the steady-state / snapshot shape E23 measures.
    pub fn compact_all(&self) {
        let inner = &*self.inner;
        inner.seal();
        let mut s = lock(&inner.sync);
        s.full_requested = true;
        inner.cv.notify_all();
        while s.pending > 0 || s.full_requested {
            s = inner.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Current structural counters.
    pub fn stats(&self) -> CompactingStats {
        let inner = &*self.inner;
        let state = inner.snapshot();
        let front_keys = lock(&state.front.log).keys.len();
        CompactingStats {
            front_keys,
            sealed_fronts: state.sealed.len(),
            tiers: state.tiers.len(),
            tier_keys: state.tiers.iter().map(|t| t.keys.len()).sum(),
            seals: inner.seals.load(Ordering::Relaxed),
            compactions: inner.compactions.load(Ordering::Relaxed),
            failed_compactions: inner.failed_compactions.load(Ordering::Relaxed),
        }
    }

    /// The configuration this filter was built with.
    pub fn config(&self) -> CompactingConfig {
        self.inner.cfg
    }

    /// Heap bytes held by retained key logs (front, sealed fronts and
    /// tier key sets) — the stand-in for the on-disk runs an LSM would
    /// keep, *excluded* from [`Filter::size_in_bytes`] (which accounts
    /// filter memory only; see DESIGN.md's bits/key accounting).
    pub fn retained_key_bytes(&self) -> usize {
        let state = self.inner.snapshot();
        let logs: usize = state
            .sealed
            .iter()
            .chain(std::iter::once(&state.front))
            .map(|f| lock(&f.log).keys.len())
            .sum();
        let tiers: usize = state.tiers.iter().map(|t| t.keys.len()).sum();
        (logs + tiers) * std::mem::size_of::<u64>()
    }

    /// Serialize a point-in-time snapshot: static tiers as
    /// `(keys, fuse bytes)` pairs, plus every not-yet-compacted key
    /// (front and sealed logs) as a loose tail replayed on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let state = self.inner.snapshot();
        let cfg = &self.inner.cfg;
        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u32(match cfg.arity {
            FuseArity::Three => 3,
            FuseArity::Four => 4,
        });
        w.put_u64(cfg.front_capacity as u64);
        w.put_f64(cfg.eps);
        w.put_u64(cfg.seed);
        w.put_u32(match cfg.policy {
            CompactionPolicy::Tiered => 0,
            CompactionPolicy::Leveled => 1,
            CompactionPolicy::LazyLeveled => 2,
        });
        w.put_u64(cfg.max_tiers as u64);
        match cfg.allocation {
            FprAllocation::Uniform(e) => {
                w.put_u32(0);
                w.put_f64(e);
                w.put_f64(0.0);
            }
            FprAllocation::Monkey { base_eps, ratio } => {
                w.put_u32(1);
                w.put_f64(base_eps);
                w.put_f64(ratio);
            }
        }
        w.put_u32(state.tiers.len() as u32);
        for t in state.tiers.iter() {
            w.put_u64_slice(&t.keys);
            w.put_bytes(&t.filter.to_bytes());
        }
        let mut loose: Vec<u64> = Vec::new();
        for f in state.sealed.iter().chain(std::iter::once(&state.front)) {
            loose.extend_from_slice(&lock(&f.log).keys);
        }
        w.put_u64_slice(&loose);
        w.into_bytes()
    }

    /// Deserialize a snapshot written by [`CompactingFilter::to_bytes`].
    /// Tiers are installed verbatim; loose keys are replayed through
    /// the normal insert path (so a huge tail just seals and compacts
    /// as usual).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SerialError> {
        let mut r = ByteReader::new(bytes);
        if r.take_u32()? != MAGIC {
            return Err(SerialError::Corrupt("compacting magic"));
        }
        let arity = match r.take_u32()? {
            3 => FuseArity::Three,
            4 => FuseArity::Four,
            _ => return Err(SerialError::Corrupt("compacting arity")),
        };
        let front_capacity = r.take_u64()? as usize;
        let eps = r.take_f64()?;
        let seed = r.take_u64()?;
        let policy = match r.take_u32()? {
            0 => CompactionPolicy::Tiered,
            1 => CompactionPolicy::Leveled,
            2 => CompactionPolicy::LazyLeveled,
            _ => return Err(SerialError::Corrupt("compacting policy")),
        };
        let max_tiers = r.take_u64()? as usize;
        let alloc_tag = r.take_u32()?;
        let (a0, a1) = (r.take_f64()?, r.take_f64()?);
        let allocation = match alloc_tag {
            0 => FprAllocation::Uniform(a0),
            1 => FprAllocation::Monkey {
                base_eps: a0,
                ratio: a1,
            },
            _ => return Err(SerialError::Corrupt("compacting allocation")),
        };
        let cfg = CompactingConfig {
            front_capacity,
            eps,
            arity,
            allocation,
            policy,
            max_tiers,
            seed,
        };
        cfg.validate()?;
        let n_tiers = r.take_u32()? as usize;
        let mut tiers = Vec::with_capacity(n_tiers);
        for _ in 0..n_tiers {
            let keys = r.take_u64_vec()?;
            if keys.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SerialError::Corrupt("compacting tier keys unsorted"));
            }
            let filter = BinaryFuseFilter::from_bytes(&r.take_bytes()?)?;
            if filter.len() != keys.len() || filter.arity() != arity {
                return Err(SerialError::Corrupt("compacting tier mismatch"));
            }
            // Cheap structural cross-check: the filter must accept its
            // own key set (a corrupt table would break the no-false-
            // negative contract silently).
            if keys.iter().any(|&k| !filter.contains(k)) {
                return Err(SerialError::Corrupt("compacting tier rejects own key"));
            }
            tiers.push(Arc::new(Tier { filter, keys }));
        }
        let loose = r.take_u64_vec()?;
        let filter = CompactingFilter::new(cfg);
        if !tiers.is_empty() {
            let delta = tiers.len() as i64;
            let mut guard = filter
                .inner
                .state
                .write()
                .unwrap_or_else(|p| p.into_inner());
            let cur = Arc::clone(&guard);
            *guard = Arc::new(State {
                front: Arc::clone(&cur.front),
                sealed: Vec::new(),
                tiers,
            });
            drop(guard);
            crate::TIERS.add(delta);
        }
        for k in loose {
            filter.insert(k);
        }
        Ok(filter)
    }
}

impl Inner {
    fn snapshot(&self) -> Arc<State> {
        Arc::clone(&self.state.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Seal the current front and publish it for the compactor.
    /// Returns `false` when the front is empty or already sealed (a
    /// concurrent sealer won the race).
    fn seal(&self) -> bool {
        let mut guard = self.state.write().unwrap_or_else(|p| p.into_inner());
        let cur = Arc::clone(&guard);
        let n_keys;
        {
            let mut log = lock(&cur.front.log);
            if log.sealed || log.keys.is_empty() {
                return false;
            }
            log.sealed = true;
            // The sealing thread is the request thread (seal runs
            // inline from insert/flush), so its thread-local trace —
            // if any — is the request this seal belongs to.
            log.handoff = telemetry::trace::handoff();
            n_keys = log.keys.len();
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sealed = cur.sealed.clone();
        sealed.push(Arc::clone(&cur.front));
        *guard = Arc::new(State {
            front: Arc::new(Front::new(&self.cfg, epoch)),
            sealed,
            tiers: cur.tiers.clone(),
        });
        // Count the seal while still holding the state write lock:
        // if the front became visible before `pending += 1` landed,
        // a compaction snapshotting in the window would drain it and
        // decrement `pending` by a seal that was never counted —
        // `saturating_sub` clamps at 0, the late increment then
        // strands `pending` at 1 with nothing sealed, and the worker
        // busy-loops while `flush`/`compact_all` wait forever.
        {
            let mut s = lock(&self.sync);
            s.pending += 1;
        }
        drop(guard);
        self.seals.fetch_add(1, Ordering::Relaxed);
        crate::SEALS.inc();
        telemetry::emit(EventKind::TierSealed, n_keys as u64, epoch);
        self.cv.notify_all();
        true
    }
}

/// How many of the newest tiers the incoming batch absorbs.
fn plan_merge(tiers: &[Arc<Tier>], incoming: usize, cfg: &CompactingConfig) -> usize {
    let absorb = |tiers: &[Arc<Tier>]| {
        let mut acc = incoming.max(1);
        let mut n = 0;
        for t in tiers.iter().rev() {
            if t.keys.len() <= acc {
                acc += t.keys.len();
                n += 1;
            } else {
                break;
            }
        }
        n
    };
    match cfg.policy {
        CompactionPolicy::Leveled => tiers.len(),
        CompactionPolicy::Tiered => absorb(tiers),
        CompactionPolicy::LazyLeveled => {
            let n = absorb(tiers);
            if tiers.len() - n + 1 > cfg.max_tiers {
                tiers.len()
            } else {
                n
            }
        }
    }
}

/// One compaction round: drain every sealed front (and per policy,
/// the newest tiers) into one rebuilt fuse tier, then install it with
/// a single swap. Runs on the worker thread only, so tiers have
/// exactly one mutator. Returns the number of fronts drained.
fn compact_once(inner: &Inner, full: bool) -> usize {
    let _t = crate::COMPACTION_NS.span();
    let t0 = std::time::Instant::now();
    let state = inner.snapshot();
    let drained = state.sealed.clone();
    if drained.is_empty() && !(full && state.tiers.len() > 1) {
        return 0;
    }
    // Everything below — clone, sort, dedup, fuse build — happens
    // outside every lock; readers keep probing the old state.
    let mut keys: Vec<u64> = Vec::new();
    let mut handoffs: Vec<telemetry::trace::SpanHandoff> = Vec::new();
    for f in &drained {
        let mut log = lock(&f.log);
        keys.extend_from_slice(&log.keys);
        handoffs.extend(log.handoff.take());
    }
    let merged = if full {
        state.tiers.len()
    } else {
        plan_merge(&state.tiers, keys.len(), &inner.cfg)
    };
    let keep = state.tiers.len() - merged;
    for t in &state.tiers[keep..] {
        keys.extend_from_slice(&t.keys);
    }
    keys.sort_unstable();
    keys.dedup();
    let total: usize = state.tiers[..keep]
        .iter()
        .map(|t| t.keys.len())
        .sum::<usize>()
        + keys.len();
    let eps = inner.cfg.allocation.eps_for_run(keys.len(), total);
    let fp_bits = fp_bits_for(eps);
    let epoch = inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
    let seed = inner.cfg.seed ^ mix64(epoch.wrapping_mul(2) | 1);
    let filter = match BinaryFuseFilter::build_with_seed(&keys, inner.cfg.arity, fp_bits, seed) {
        Ok(f) => f,
        Err(_) => {
            // Keys are deduplicated, so this needs a full-hash
            // collision to persist across the seed budget. Leave the
            // sealed fronts queryable; the next compaction retries
            // with a fresh epoch seed.
            inner.failed_compactions.fetch_add(1, Ordering::Relaxed);
            crate::FAILED_COMPACTIONS.inc();
            return drained.len();
        }
    };
    let tier_keys = keys.len();
    let tier = Arc::new(Tier { filter, keys });
    let mut guard = inner.state.write().unwrap_or_else(|p| p.into_inner());
    let cur = Arc::clone(&guard);
    // Fronts sealed while we were building stay queued; `cur.tiers`
    // equals our snapshot's tiers (single mutator).
    let sealed: Vec<Arc<Front>> = cur
        .sealed
        .iter()
        .filter(|f| !drained.iter().any(|d| Arc::ptr_eq(d, f)))
        .cloned()
        .collect();
    let mut tiers = cur.tiers[..keep].to_vec();
    tiers.push(tier);
    let n_tiers = tiers.len();
    *guard = Arc::new(State {
        front: Arc::clone(&cur.front),
        sealed,
        tiers,
    });
    drop(guard);
    inner.compactions.fetch_add(1, Ordering::Relaxed);
    crate::COMPACTIONS.inc();
    crate::TIERS.add(n_tiers as i64 - cur.tiers.len() as i64);
    telemetry::emit(EventKind::TierCompacted, tier_keys as u64, n_tiers as u64);
    // Link the compaction back to every traced request whose seal it
    // drained — the cross-thread half of the trace (rendered as a
    // flow arrow in the Chrome trace viewer).
    let dur = t0.elapsed();
    for h in handoffs {
        telemetry::trace::record_linked(
            h,
            "compacting:compact",
            dur,
            tier_keys as u64,
            n_tiers as u64,
        );
    }
    drained.len()
}

fn worker_loop(inner: &Inner) {
    loop {
        let full = {
            let mut s = lock(&inner.sync);
            loop {
                if s.shutdown {
                    return;
                }
                if s.pending > 0 || s.full_requested {
                    break s.full_requested;
                }
                s = inner.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        };
        let drained = compact_once(inner, full);
        let mut s = lock(&inner.sync);
        s.pending = s.pending.saturating_sub(drained);
        if full {
            s.full_requested = false;
        }
        inner.cv.notify_all();
    }
}

impl Drop for CompactingFilter {
    fn drop(&mut self) {
        {
            let mut s = lock(&self.inner.sync);
            s.shutdown = true;
            self.inner.cv.notify_all();
        }
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        let tiers = self.inner.snapshot().tiers.len();
        if tiers > 0 {
            crate::TIERS.add(-(tiers as i64));
        }
    }
}

impl Filter for CompactingFilter {
    fn contains(&self, key: u64) -> bool {
        let state = self.inner.snapshot();
        if state.front.bloom.contains(key) {
            return true;
        }
        if state.sealed.iter().any(|f| f.bloom.contains(key)) {
            return true;
        }
        state.tiers.iter().rev().any(|t| t.filter.contains(key))
    }

    /// Keys across every layer. Counts front/sealed log entries as-is
    /// (duplicates collapse only at compaction), so this is an upper
    /// bound on distinct keys that becomes exact after
    /// [`CompactingFilter::compact_all`].
    fn len(&self) -> usize {
        let state = self.inner.snapshot();
        let logs: usize = state
            .sealed
            .iter()
            .chain(std::iter::once(&state.front))
            .map(|f| lock(&f.log).keys.len())
            .sum();
        logs + state.tiers.iter().map(|t| t.keys.len()).sum::<usize>()
    }

    /// Filter memory only: front + sealed Blooms and fuse tier
    /// tables. Retained key logs are accounted separately
    /// ([`CompactingFilter::retained_key_bytes`]) — they model the
    /// on-disk runs an LSM already stores, not filter overhead.
    fn size_in_bytes(&self) -> usize {
        let state = self.inner.snapshot();
        let blooms: usize = state
            .sealed
            .iter()
            .chain(std::iter::once(&state.front))
            .map(|f| f.bloom.size_in_bytes())
            .sum();
        blooms
            + state
                .tiers
                .iter()
                .map(|t| t.filter.size_in_bytes())
                .sum::<usize>()
    }
}

impl BatchedFilter for CompactingFilter {
    /// Fan the chunk across every layer with each layer's own batched
    /// kernel, OR-accumulating — one snapshot, `layers` pipelined
    /// passes, no per-key re-dispatch.
    fn contains_chunk(&self, keys: &[u64], out: &mut [bool]) {
        debug_assert!(keys.len() <= PROBE_CHUNK && keys.len() == out.len());
        let state = self.inner.snapshot();
        state.front.bloom.contains_chunk(keys, out);
        let mut tmp = [false; PROBE_CHUNK];
        let tmp = &mut tmp[..keys.len()];
        for f in state.sealed.iter() {
            if out.iter().all(|&o| o) {
                return;
            }
            f.bloom.contains_chunk(keys, tmp);
            for (o, &t) in out.iter_mut().zip(tmp.iter()) {
                *o |= t;
            }
        }
        for t in state.tiers.iter() {
            if out.iter().all(|&o| o) {
                return;
            }
            t.filter.contains_chunk(keys, tmp);
            for (o, &hit) in out.iter_mut().zip(tmp.iter()) {
                *o |= hit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{disjoint_keys, unique_keys};

    fn small_cfg(seed: u64) -> CompactingConfig {
        CompactingConfig::new(512, 1.0 / 256.0, seed)
    }

    #[test]
    fn no_false_negatives_through_compaction() {
        let f = CompactingFilter::new(small_cfg(1));
        let keys = unique_keys(21, 10_000);
        for &k in &keys {
            f.insert(k);
            assert!(f.contains(k), "key lost immediately after insert");
        }
        assert!(keys.iter().all(|&k| f.contains(k)));
        f.flush();
        assert!(keys.iter().all(|&k| f.contains(k)), "key lost by flush");
        f.compact_all();
        assert!(
            keys.iter().all(|&k| f.contains(k)),
            "key lost by compaction"
        );
        let st = f.stats();
        assert_eq!(st.tiers, 1, "compact_all must leave one tier");
        assert_eq!(st.sealed_fronts, 0);
        assert_eq!(st.tier_keys, keys.len());
    }

    #[test]
    fn compaction_reaches_static_space() {
        let f = CompactingFilter::new(CompactingConfig::new(4096, 1.0 / 256.0, 3));
        let keys = unique_keys(22, 60_000);
        for &k in &keys {
            f.insert(k);
        }
        f.compact_all();
        // One 4-wise fuse tier at 8-bit fingerprints plus one empty
        // front Bloom: comfortably below a mutable Bloom's ~12.9.
        let bpk = f.size_in_bytes() as f64 * 8.0 / keys.len() as f64;
        assert!(
            bpk < 10.5,
            "steady-state bits/key {bpk}, stats {:?}",
            f.stats()
        );
        let st = f.stats();
        assert_eq!(st.front_keys, 0);
        assert_eq!(st.tier_keys, keys.len());
    }

    #[test]
    fn fpr_stays_within_budget_after_compaction() {
        let f = CompactingFilter::new(CompactingConfig::new(4096, 1.0 / 256.0, 4));
        let keys = unique_keys(23, 50_000);
        for &k in &keys {
            f.insert(k);
        }
        f.compact_all();
        let neg = disjoint_keys(24, 200_000, &keys);
        let fpr = neg.iter().filter(|&&k| f.contains(k)).count() as f64 / neg.len() as f64;
        assert!(fpr <= 1.5 / 256.0, "fpr {fpr} exceeds 1.5ε");
    }

    #[test]
    fn duplicate_inserts_collapse() {
        let f = CompactingFilter::new(small_cfg(5));
        for round in 0..4 {
            for k in 0..2_000u64 {
                f.insert(k ^ (round & 1)); // half duplicates each round
            }
        }
        f.compact_all();
        let st = f.stats();
        assert_eq!(st.tiers, 1);
        assert!(st.tier_keys <= 2_001, "dedup failed: {}", st.tier_keys);
        assert!(f.contains(0) && f.contains(1) && f.contains(1_999));
    }

    #[test]
    fn policies_shape_tier_counts() {
        let run = |policy, max_tiers| {
            let mut cfg = small_cfg(6);
            cfg.policy = policy;
            cfg.max_tiers = max_tiers;
            let f = CompactingFilter::new(cfg);
            let keys = unique_keys(25, 20_000);
            for &k in &keys {
                f.insert(k);
            }
            f.flush();
            assert!(keys.iter().all(|&k| f.contains(k)));
            f.stats().tiers
        };
        assert_eq!(run(CompactionPolicy::Leveled, 8), 1);
        assert!(run(CompactionPolicy::LazyLeveled, 4) <= 4);
    }

    #[test]
    fn batched_matches_pointwise() {
        let f = CompactingFilter::new(small_cfg(7));
        let keys = unique_keys(26, 5_000);
        for &k in &keys {
            f.insert(k);
        }
        f.flush(); // leave tiers AND a part-full front
        for k in 0..100u64 {
            f.insert(k.wrapping_mul(0x9e37_79b9));
        }
        let probes: Vec<u64> = keys
            .iter()
            .copied()
            .take(500)
            .chain(disjoint_keys(27, 500, &keys))
            .collect();
        let got = f.contains_batch(&probes);
        for (&p, &g) in probes.iter().zip(&got) {
            assert_eq!(g, f.contains(p), "batched mismatch on {p}");
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let f = CompactingFilter::new(small_cfg(8));
        let keys = unique_keys(28, 8_000);
        for &k in &keys {
            f.insert(k);
        }
        // Collapse to one deterministic tier: after a mere flush() the
        // tier structure (and so the measured FPR below) depends on
        // how the background thread happened to group seals.
        f.compact_all();
        for k in 0..300u64 {
            f.insert(k | 1 << 63); // loose tail in the front
        }
        let bytes = f.to_bytes();
        let g = CompactingFilter::from_bytes(&bytes).unwrap();
        assert!(keys.iter().all(|&k| g.contains(k)));
        assert!((0..300u64).all(|k| g.contains(k | 1 << 63)));
        assert_eq!(g.stats().tiers, f.stats().tiers);
        // FPR carries over (same tiers, same seeds).
        let neg = disjoint_keys(29, 50_000, &keys);
        let fpr = neg.iter().filter(|&&k| g.contains(k)).count() as f64 / neg.len() as f64;
        assert!(fpr <= 3.0 / 256.0, "roundtripped fpr {fpr}");
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let f = CompactingFilter::new(small_cfg(9));
        for k in 0..3_000u64 {
            f.insert(k.wrapping_mul(0xdead_beef_cafe));
        }
        f.flush();
        let bytes = f.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CompactingFilter::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(CompactingFilter::from_bytes(&wrong).is_err());
    }

    #[test]
    fn stats_and_events_track_lifecycle() {
        let f = CompactingFilter::new(small_cfg(10));
        for k in 0..5_000u64 {
            f.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d));
        }
        f.flush();
        let st = f.stats();
        assert!(st.seals >= 1, "no seal recorded");
        assert!(st.compactions >= 1, "no compaction recorded");
        assert_eq!(st.failed_compactions, 0);
        assert_eq!(st.sealed_fronts, 0, "flush left sealed fronts");
    }

    #[test]
    fn empty_filter_is_well_behaved() {
        let f = CompactingFilter::new(small_cfg(11));
        assert!(f.is_empty());
        assert!(!f.contains(42));
        f.flush(); // empty seal is a no-op
        f.compact_all();
        assert_eq!(f.stats().tiers, 0);
        let g = CompactingFilter::from_bytes(&f.to_bytes()).unwrap();
        assert!(g.is_empty());
    }
}
