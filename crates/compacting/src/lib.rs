//! # compacting
//!
//! A **filter LSM**: the RocksDB shape applied to the filters
//! themselves (tutorial §3.1, ROADMAP item 2). Mutable filters pay
//! 11–13 bits/key at ε = 2⁻⁸ because they must accept inserts;
//! static binary fuse filters reach ~8.6–9.0 bits/key but cannot.
//! [`CompactingFilter`] gets both: a wait-free
//! [`bloom::AtomicBlockedBloomFilter`] *front* (the memtable) absorbs
//! inserts, and a background compaction thread drains sealed fronts
//! into immutable [`xorf::BinaryFuseFilter`] *tiers* — so steady-state
//! read-mostly memory converges to the static filter's footprint
//! while writes stay wait-free.
//!
//! Tier rotation uses an epoch-swap scheme: every structural change
//! builds a fresh immutable [`state`](CompactingFilter) and publishes
//! it with a single `Arc` store under a write lock whose critical
//! section is `O(tiers)` pointer copies — never a hash, never a
//! build — so lookups never block on compaction (DESIGN.md, "Filter
//! LSM"). Tier merge budgets reuse `crates/lsm`'s policy machinery
//! ([`lsm::FprAllocation`] for per-tier FPR, [`lsm::CompactionPolicy`]
//! for the merge shape).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod filter;

use telemetry::{StaticCounter, StaticGauge, StaticHistogram};

pub use filter::{CompactingConfig, CompactingFilter, CompactingStats};

/// Fronts sealed (each seal hands one immutable memtable to the
/// compactor; also an [`telemetry::EventKind::TierSealed`] event).
pub static SEALS: StaticCounter = StaticCounter::new(
    "bb_compacting_seals_total",
    "Memtable fronts sealed for background compaction.",
);

/// Background compactions completed (each installs one rebuilt fuse
/// tier; also a [`telemetry::EventKind::TierCompacted`] event).
pub static COMPACTIONS: StaticCounter = StaticCounter::new(
    "bb_compacting_compactions_total",
    "Background tier compactions completed.",
);

/// Compactions abandoned because the fuse build exhausted its seed
/// budget (the sealed fronts stay queryable and are retried with the
/// next compaction's epoch seed).
pub static FAILED_COMPACTIONS: StaticCounter = StaticCounter::new(
    "bb_compacting_failed_compactions_total",
    "Background compactions abandoned by fuse construction failure.",
);

/// Static fuse tiers currently live across all compacting filters.
pub static TIERS: StaticGauge = StaticGauge::new(
    "bb_compacting_tiers",
    "Static fuse tiers currently live across all compacting filters.",
);

/// Wall-clock nanoseconds per background compaction (drain + sort +
/// fuse build + epoch swap).
pub static COMPACTION_NS: StaticHistogram = StaticHistogram::new(
    "bb_compacting_compaction_ns",
    "Wall-clock nanoseconds per background tier compaction.",
);

/// Eagerly register this crate's metric families so they render in
/// the exposition even before any traffic touches them.
pub fn register_metrics() {
    SEALS.register();
    COMPACTIONS.register();
    FAILED_COMPACTIONS.register();
    TIERS.register();
    COMPACTION_NS.register();
}
