//! # beyond-bloom
//!
//! A comprehensive Rust implementation of the modern filter landscape
//! surveyed in *Beyond Bloom: A Tutorial on Future Feature-Rich
//! Filters* (Pandey, Farach-Colton, Dayan, Zhang — SIGMOD 2024).
//!
//! This facade crate re-exports the whole workspace. Start with the
//! trait hierarchy in [`core`] ([`core::Filter`],
//! [`core::DynamicFilter`], [`core::CountingFilter`],
//! [`core::Maplet`], [`core::RangeFilter`], [`core::Expandable`],
//! [`core::AdaptiveFilter`]), then pick implementations:
//!
//! | need | reach for |
//! |---|---|
//! | static set, minimal space | [`ribbon::RibbonFilter`], [`xorf::XorFilter`] |
//! | inserts only | [`bloom::BloomFilter`], [`prefix_filter::PrefixFilter`] |
//! | inserts + deletes | [`quotient::QuotientFilter`], [`cuckoo::CuckooFilter`] |
//! | fast block-local inserts + deletes | [`quotient::VectorQuotientFilter`] |
//! | one cache line per lookup | [`cuckoo::MortonFilter`], [`bloom::BlockedBloomFilter`] |
//! | one SIMD compare per lookup | [`bloom::RegisterBlockedBloomFilter`] |
//! | multiset counts | [`quotient::CountingQuotientFilter`] |
//! | many threads | [`concurrent::Sharded`] (any filter), [`quotient::ConcurrentQuotientFilter`], [`bloom::AtomicBlockedBloomFilter`] |
//! | grows forever | [`infini::InfiniFilter`] (deletes) / [`infini::TaffyCuckooFilter`] |
//! | grows one bucket at a time | [`infini::RingFilter`] (ops go logarithmic) |
//! | adversarial queries | [`adaptive::AdaptiveQuotientFilter`], [`cuckoo::AdaptiveCuckooFilter`] |
//! | key → small value | [`maplet`] (quotient/cuckoo/Bloomier/collision-free) |
//! | range emptiness | [`rangefilter`] (Grafite, SuRF, Rosetta, REncoder, SNARF, ARF) |
//! | string-keyed ranges | [`rangefilter::SurfBytes`] |
//! | known hot negatives | [`stacked::StackedFilter`] |
//! | learnable key distribution | [`stacked::LearnedFilter`] |
//! | static set, minimal space + batch probes | [`xorf::BinaryFuseFilter`] |
//! | mutable writes, static-filter space | [`compacting::CompactingFilter`] |
//! | bigger than RAM | [`lsm::CascadeFilter`] |
//!
//! Application case studies live in [`lsm`] (storage engines),
//! [`biofilter`] (computational biology), and [`netsec`] (URL
//! blocking); deterministic workload generators in [`workloads`];
//! and [`service`] serves any of the concurrent backends over a
//! versioned binary wire protocol (`std::net`, no external deps).
//!
//! ```
//! use beyond_bloom::core::{Filter, InsertFilter};
//!
//! let mut f = beyond_bloom::bloom::BloomFilter::new(1_000, 0.01);
//! f.insert(42).unwrap();
//! assert!(f.contains(42));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use adaptive;
pub use biofilter;
pub use bloofi;
pub use bloom;
pub use compacting;
pub use concurrent;
pub use cuckoo;
pub use eventloop;
pub use filter_core as core;
pub use infini;
pub use lsm;
pub use maplet;
pub use netsec;
pub use prefix_filter;
pub use quotient;
pub use rangefilter;
pub use ribbon;
pub use service;
pub use stacked;
pub use telemetry;
pub use workloads;
pub use xorf;
