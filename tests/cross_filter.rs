//! Cross-crate integration tests: every point filter is exercised
//! through the shared trait hierarchy against common invariants.

use beyond_bloom::core::{DynamicFilter, Filter, InsertFilter};
use beyond_bloom::workloads::{disjoint_keys, unique_keys};

const N: usize = 30_000;

fn keys_and_probes() -> (Vec<u64>, Vec<u64>) {
    let keys = unique_keys(900, N);
    let probes = disjoint_keys(901, N, &keys);
    (keys, probes)
}

/// Every insertable filter as a trait object at ε = 1%.
fn insertable_filters() -> Vec<(&'static str, Box<dyn InsertFilter>)> {
    vec![
        (
            "bloom",
            Box::new(beyond_bloom::bloom::BloomFilter::new(N, 0.01)),
        ),
        (
            "blocked-bloom",
            Box::new(beyond_bloom::bloom::BlockedBloomFilter::new(N, 0.01)),
        ),
        (
            "counting-bloom",
            Box::new(beyond_bloom::bloom::CountingBloomFilter::new(N, 0.01, 4)),
        ),
        (
            "scalable-bloom",
            Box::new(beyond_bloom::bloom::ScalableBloomFilter::new(1024, 0.01)),
        ),
        (
            "quotient",
            Box::new(beyond_bloom::quotient::QuotientFilter::for_capacity(
                N, 0.01,
            )),
        ),
        (
            "cqf",
            Box::new(beyond_bloom::quotient::CountingQuotientFilter::for_capacity(N, 0.01)),
        ),
        (
            "cuckoo",
            Box::new(beyond_bloom::cuckoo::CuckooFilter::new(N, 10)),
        ),
        (
            "prefix",
            Box::new(beyond_bloom::prefix_filter::PrefixFilter::new(N, 11)),
        ),
        (
            "infini",
            Box::new(beyond_bloom::infini::InfiniFilter::new(10, 12)),
        ),
        (
            "adaptive-qf",
            Box::new(beyond_bloom::adaptive::AdaptiveQuotientFilter::new(16, 7)),
        ),
        (
            "adaptive-cuckoo",
            Box::new(beyond_bloom::cuckoo::AdaptiveCuckooFilter::new(N, 10)),
        ),
        (
            "dleft",
            Box::new(beyond_bloom::bloom::DLeftCountingFilter::new(N + N / 4, 4)),
        ),
        (
            "spectral",
            Box::new(beyond_bloom::bloom::SpectralBloomFilter::new(N, 0.01, 4)),
        ),
        (
            "vector-quotient",
            Box::new(beyond_bloom::quotient::VectorQuotientFilter::new(N)),
        ),
        (
            "taffy",
            Box::new(beyond_bloom::infini::TaffyCuckooFilter::new(10, 12)),
        ),
    ]
}

#[test]
fn no_false_negatives_any_filter() {
    let (keys, _) = keys_and_probes();
    for (name, mut f) in insertable_filters() {
        for &k in &keys {
            f.insert(k)
                .unwrap_or_else(|e| panic!("{name}: insert failed: {e}"));
        }
        let misses = keys.iter().filter(|&&k| !f.contains(k)).count();
        assert_eq!(misses, 0, "{name}: {misses} false negatives");
        // Counting filters report distinct fingerprints, which can
        // merge ~eps·n/2 key pairs; plain filters report exact counts.
        assert!(
            f.len() <= keys.len() && f.len() > keys.len() * 99 / 100,
            "{name}: len {} vs {} keys",
            f.len(),
            keys.len()
        );
    }
}

#[test]
fn fpr_within_3x_configured_any_filter() {
    let (keys, probes) = keys_and_probes();
    for (name, mut f) in insertable_filters() {
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let fp = probes.iter().filter(|&&k| f.contains(k)).count();
        let fpr = fp as f64 / probes.len() as f64;
        assert!(fpr < 0.035, "{name}: fpr {fpr}");
    }
}

#[test]
fn static_filters_share_invariants() {
    let (keys, probes) = keys_and_probes();
    let filters: Vec<(&str, Box<dyn Filter>)> = vec![
        (
            "xor",
            Box::new(beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap()),
        ),
        (
            "ribbon",
            Box::new(beyond_bloom::ribbon::RibbonFilter::build(&keys, 8).unwrap()),
        ),
    ];
    for (name, f) in filters {
        assert!(
            keys.iter().all(|&k| f.contains(k)),
            "{name}: false negative"
        );
        let fpr = probes.iter().filter(|&&k| f.contains(k)).count() as f64 / probes.len() as f64;
        assert!(fpr < 3.0 / 256.0, "{name}: fpr {fpr}");
        assert!(
            f.bits_per_key() < 16.0,
            "{name}: {} bits/key",
            f.bits_per_key()
        );
    }
}

#[test]
fn dynamic_filters_delete_cleanly() {
    let (keys, _) = keys_and_probes();
    let filters: Vec<(&str, Box<dyn DynamicFilter>)> = vec![
        (
            "quotient",
            Box::new(beyond_bloom::quotient::QuotientFilter::for_capacity(
                N, 0.001,
            )),
        ),
        (
            "cuckoo",
            Box::new(beyond_bloom::cuckoo::CuckooFilter::new(N, 14)),
        ),
        (
            "infini",
            Box::new(beyond_bloom::infini::InfiniFilter::new(10, 14)),
        ),
        (
            "adaptive-qf",
            Box::new(beyond_bloom::adaptive::AdaptiveQuotientFilter::new(16, 10)),
        ),
    ];
    for (name, mut f) in filters {
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys[..N / 2] {
            assert!(f.remove(k).unwrap(), "{name}: delete failed");
        }
        let lingering = keys[..N / 2].iter().filter(|&&k| f.contains(k)).count();
        assert!(
            lingering < N / 100,
            "{name}: {lingering} deleted keys still positive"
        );
        let misses = keys[N / 2..].iter().filter(|&&k| !f.contains(k)).count();
        assert_eq!(misses, 0, "{name}: deletes broke live keys");
    }
}

#[test]
fn space_ranking_matches_tutorial() {
    // §2.7's ordering at eps = 2^-8: ribbon < xor < bloom; modern
    // dynamic filters beat Bloom's 1.44x factor at *low* eps where
    // the constant additive overhead is amortised.
    let keys = unique_keys(902, 100_000);
    let mut b = beyond_bloom::bloom::BloomFilter::new(keys.len(), 1.0 / 256.0);
    for &k in &keys {
        b.insert(k).unwrap();
    }
    let x = beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap();
    let r = beyond_bloom::ribbon::RibbonFilter::build(&keys, 8).unwrap();
    assert!(r.bits_per_key() < x.bits_per_key());
    assert!(x.bits_per_key() < b.bits_per_key());
}
