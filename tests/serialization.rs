//! Persistence round-trips: filters written beside immutable runs
//! must reload with identical behaviour.

use beyond_bloom::core::{Filter, InsertFilter};
use beyond_bloom::workloads::{disjoint_keys, unique_keys};

#[test]
fn bloom_roundtrip() {
    let keys = unique_keys(950, 20_000);
    let mut f = beyond_bloom::bloom::BloomFilter::new(20_000, 0.01);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    let bytes = f.to_bytes();
    let g = beyond_bloom::bloom::BloomFilter::from_bytes(&bytes).unwrap();
    assert_eq!(g.len(), f.len());
    let probes = disjoint_keys(951, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k), "behaviour diverged at {k}");
    }
}

#[test]
fn xor_roundtrip() {
    let keys = unique_keys(952, 50_000);
    let f = beyond_bloom::xorf::XorFilter::build(&keys, 12).unwrap();
    let g = beyond_bloom::xorf::XorFilter::from_bytes(&f.to_bytes()).unwrap();
    let probes = disjoint_keys(953, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k));
    }
    assert_eq!(f.size_in_bytes(), g.size_in_bytes());
}

#[test]
fn ribbon_roundtrip() {
    let keys = unique_keys(954, 50_000);
    let f = beyond_bloom::ribbon::RibbonFilter::build(&keys, 10).unwrap();
    let g = beyond_bloom::ribbon::RibbonFilter::from_bytes(&f.to_bytes()).unwrap();
    assert_eq!(g.segments(), f.segments());
    let probes = disjoint_keys(955, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k));
    }
}

#[test]
fn corrupted_inputs_rejected_not_panicking() {
    let keys = unique_keys(956, 1_000);
    let f = beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap();
    let bytes = f.to_bytes();
    // Truncations at every prefix length must error, never panic.
    for cut in 0..bytes.len().min(64) {
        assert!(beyond_bloom::xorf::XorFilter::from_bytes(&bytes[..cut]).is_err());
    }
    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xff;
    assert!(beyond_bloom::xorf::XorFilter::from_bytes(&wrong).is_err());
    // Cross-family confusion: ribbon bytes are not a bloom.
    let rf = beyond_bloom::ribbon::RibbonFilter::build(&keys, 8).unwrap();
    assert!(beyond_bloom::bloom::BloomFilter::from_bytes(&rf.to_bytes()).is_err());
}
