//! Persistence round-trips: filters written beside immutable runs
//! must reload with identical behaviour.

use beyond_bloom::core::{Filter, InsertFilter};
use beyond_bloom::workloads::{disjoint_keys, unique_keys};

#[test]
fn bloom_roundtrip() {
    let keys = unique_keys(950, 20_000);
    let mut f = beyond_bloom::bloom::BloomFilter::new(20_000, 0.01);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    let bytes = f.to_bytes();
    let g = beyond_bloom::bloom::BloomFilter::from_bytes(&bytes).unwrap();
    assert_eq!(g.len(), f.len());
    let probes = disjoint_keys(951, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k), "behaviour diverged at {k}");
    }
}

#[test]
fn two_choice_bloom_roundtrip_and_corruption() {
    let keys = unique_keys(967, 20_000);
    let mut f = beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::with_seed(20_000, 0.01, 5);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    let bytes = f.to_bytes();
    let g = beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::from_bytes(&bytes).unwrap();
    assert_eq!(g.len(), f.len());
    let probes = disjoint_keys(968, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k), "behaviour diverged at {k}");
    }
    // Truncations and a flipped magic must error, never panic.
    for cut in 0..bytes.len().min(64) {
        assert!(
            beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::from_bytes(&bytes[..cut]).is_err()
        );
    }
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xff;
    assert!(beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::from_bytes(&wrong).is_err());
    // Cross-family confusion: one-choice register blobs are not
    // two-choice blobs and vice versa (distinct magics).
    let mut rb = beyond_bloom::bloom::RegisterBlockedBloomFilter::with_seed(20_000, 0.01, 5);
    for &k in &keys {
        rb.insert(k).unwrap();
    }
    assert!(beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::from_bytes(&rb.to_bytes()).is_err());
    assert!(beyond_bloom::bloom::RegisterBlockedBloomFilter::from_bytes(&bytes).is_err());
}

#[test]
fn xor_roundtrip() {
    let keys = unique_keys(952, 50_000);
    let f = beyond_bloom::xorf::XorFilter::build(&keys, 12).unwrap();
    let g = beyond_bloom::xorf::XorFilter::from_bytes(&f.to_bytes()).unwrap();
    let probes = disjoint_keys(953, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k));
    }
    assert_eq!(f.size_in_bytes(), g.size_in_bytes());
}

#[test]
fn ribbon_roundtrip() {
    let keys = unique_keys(954, 50_000);
    let f = beyond_bloom::ribbon::RibbonFilter::build(&keys, 10).unwrap();
    let g = beyond_bloom::ribbon::RibbonFilter::from_bytes(&f.to_bytes()).unwrap();
    assert_eq!(g.segments(), f.segments());
    let probes = disjoint_keys(955, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k));
    }
}

#[test]
fn corrupted_inputs_rejected_not_panicking() {
    let keys = unique_keys(956, 1_000);
    let f = beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap();
    let bytes = f.to_bytes();
    // Truncations at every prefix length must error, never panic.
    for cut in 0..bytes.len().min(64) {
        assert!(beyond_bloom::xorf::XorFilter::from_bytes(&bytes[..cut]).is_err());
    }
    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xff;
    assert!(beyond_bloom::xorf::XorFilter::from_bytes(&wrong).is_err());
    // Cross-family confusion: ribbon bytes are not a bloom.
    let rf = beyond_bloom::ribbon::RibbonFilter::build(&keys, 8).unwrap();
    assert!(beyond_bloom::bloom::BloomFilter::from_bytes(&rf.to_bytes()).is_err());
}

#[test]
fn fuse_roundtrip_both_arities() {
    use beyond_bloom::xorf::{BinaryFuseFilter, FuseArity};
    let keys = unique_keys(962, 50_000);
    let probes = disjoint_keys(963, 20_000, &keys);
    for arity in [FuseArity::Three, FuseArity::Four] {
        let f = BinaryFuseFilter::build(&keys, arity, 8).unwrap();
        let g = BinaryFuseFilter::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.arity(), f.arity());
        assert_eq!(g.size_in_bytes(), f.size_in_bytes());
        for &k in keys.iter().chain(&probes) {
            assert_eq!(f.contains(k), g.contains(k), "{arity:?} diverged at {k}");
        }
    }
}

#[test]
fn fuse_corrupt_bytes_rejected() {
    use beyond_bloom::xorf::{BinaryFuseFilter, FuseArity};
    let keys = unique_keys(964, 2_000);
    let f = BinaryFuseFilter::build(&keys, FuseArity::Four, 8).unwrap();
    let bytes = f.to_bytes();
    for cut in 0..bytes.len().min(80) {
        assert!(BinaryFuseFilter::from_bytes(&bytes[..cut]).is_err());
    }
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xff;
    assert!(BinaryFuseFilter::from_bytes(&wrong).is_err());
    // Cross-family confusion: xor bytes are not a fuse and vice versa.
    let xf = beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap();
    assert!(BinaryFuseFilter::from_bytes(&xf.to_bytes()).is_err());
    assert!(beyond_bloom::xorf::XorFilter::from_bytes(&bytes).is_err());
}

#[test]
fn compacting_roundtrip_mid_lifecycle() {
    use beyond_bloom::compacting::{CompactingConfig, CompactingFilter};
    let keys = unique_keys(965, 30_000);
    // Small front: the snapshot captures tiers + sealed fronts + a
    // partially filled live front.
    let f = CompactingFilter::new(CompactingConfig::new(1024, 1.0 / 256.0, 9));
    for &k in &keys {
        f.insert(k);
    }
    let g = CompactingFilter::from_bytes(&f.to_bytes()).unwrap();
    assert_eq!(g.len(), f.len());
    for &k in &keys {
        assert!(g.contains(k), "snapshot lost {k}");
    }
    // A restored filter keeps compacting normally.
    g.compact_all();
    assert!(keys.iter().all(|&k| g.contains(k)));
    assert_eq!(g.stats().tier_keys, keys.len());
}

#[test]
fn compacting_corrupt_bytes_rejected() {
    use beyond_bloom::compacting::{CompactingConfig, CompactingFilter};
    let keys = unique_keys(966, 5_000);
    let f = CompactingFilter::new(CompactingConfig::new(1024, 1.0 / 256.0, 9));
    for &k in &keys {
        f.insert(k);
    }
    f.flush();
    let bytes = f.to_bytes();
    for cut in 0..bytes.len().min(100) {
        assert!(CompactingFilter::from_bytes(&bytes[..cut]).is_err());
    }
    let mut wrong = bytes.clone();
    wrong[0] ^= 0xff;
    assert!(CompactingFilter::from_bytes(&wrong).is_err());
    // Cross-family confusion: a raw fuse blob is not a snapshot.
    let fuse =
        beyond_bloom::xorf::BinaryFuseFilter::build(&keys, beyond_bloom::xorf::FuseArity::Four, 8)
            .unwrap();
    assert!(CompactingFilter::from_bytes(&fuse.to_bytes()).is_err());
}

#[test]
fn cuckoo_roundtrip() {
    let keys = unique_keys(957, 30_000);
    let mut f = beyond_bloom::cuckoo::CuckooFilter::new(30_000, 14);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    for &k in &keys[..500] {
        beyond_bloom::core::DynamicFilter::remove(&mut f, k).unwrap();
    }
    let g = beyond_bloom::cuckoo::CuckooFilter::from_bytes(&f.to_bytes()).unwrap();
    assert_eq!(g.len(), f.len());
    let probes = disjoint_keys(958, 20_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.contains(k), g.contains(k), "behaviour diverged at {k}");
    }
}

#[test]
fn cqf_roundtrip_preserves_counts() {
    use beyond_bloom::core::CountingFilter;
    let keys = unique_keys(959, 5_000);
    let mut f = beyond_bloom::quotient::CountingQuotientFilter::for_capacity(30_000, 0.01);
    for (i, &k) in keys.iter().enumerate() {
        f.insert_count(k, 1 + (i as u64 % 7)).unwrap();
    }
    let g = beyond_bloom::quotient::CountingQuotientFilter::from_bytes(&f.to_bytes()).unwrap();
    assert_eq!(g.len(), f.len());
    assert_eq!(g.total_count(), f.total_count());
    let probes = disjoint_keys(960, 5_000, &keys);
    for &k in keys.iter().chain(&probes) {
        assert_eq!(f.count(k), g.count(k), "count diverged at {k}");
    }
}

#[test]
fn cuckoo_and_cqf_corrupt_bytes_rejected() {
    let keys = unique_keys(961, 2_000);
    let mut cf = beyond_bloom::cuckoo::CuckooFilter::new(2_000, 12);
    let mut qf = beyond_bloom::quotient::CountingQuotientFilter::for_capacity(2_000, 0.01);
    for &k in &keys {
        cf.insert(k).unwrap();
        qf.insert(k).unwrap();
    }
    for bytes in [cf.to_bytes(), qf.to_bytes()] {
        for cut in 0..bytes.len().min(80) {
            assert!(beyond_bloom::cuckoo::CuckooFilter::from_bytes(&bytes[..cut]).is_err());
            assert!(
                beyond_bloom::quotient::CountingQuotientFilter::from_bytes(&bytes[..cut]).is_err()
            );
        }
    }
    // Cross-family confusion in both directions.
    assert!(beyond_bloom::quotient::CountingQuotientFilter::from_bytes(&cf.to_bytes()).is_err());
    assert!(beyond_bloom::cuckoo::CuckooFilter::from_bytes(&qf.to_bytes()).is_err());
}
