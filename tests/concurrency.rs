//! Multi-thread stress suite for the concurrent filter layer.
//!
//! Each test runs writer and reader threads simultaneously over a
//! shared filter and asserts the safety properties that survive any
//! interleaving: published inserts are never false negatives, counts
//! never undercount, and every scope joins (no deadlock — per-shard
//! locks are only ever taken one at a time, and the atomic Bloom
//! takes none). The CI workflow runs this file in `--release` so the
//! compiled interleavings match production codegen.

use beyond_bloom::bloom::{AtomicBlockedBloomFilter, BloomFilter};
use beyond_bloom::concurrent::Sharded;
use beyond_bloom::core::Filter;
use beyond_bloom::quotient::CountingQuotientFilter;
use beyond_bloom::workloads::{disjoint_keys, unique_keys};
use std::sync::atomic::{AtomicBool, Ordering};

const WRITERS: usize = 4;
const READERS: usize = 3;

/// Run `WRITERS` insert threads over disjoint key chunks while
/// `READERS` threads hammer membership queries on the same keyspace;
/// return once every thread has joined.
fn write_read_storm<F: Sync>(
    filter: &F,
    keys: &[u64],
    negatives: &[u64],
    insert: impl Fn(&F, &[u64]) + Send + Sync + Copy,
    contains: impl Fn(&F, u64) -> bool + Send + Sync + Copy,
) {
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for chunk in keys.chunks(keys.len().div_ceil(WRITERS)) {
            s.spawn(move || insert(filter, chunk));
        }
        for r in 0..READERS {
            let (done, keys, negatives) = (&done, &keys, &negatives);
            s.spawn(move || {
                let mut spurious = 0usize;
                while !done.load(Ordering::Acquire) {
                    // Queries race the writers: any answer is legal
                    // for in-flight keys, so only count positives on
                    // never-inserted keys (possible false positives,
                    // bounded loosely below just to use the value).
                    for &k in negatives.iter().skip(r).step_by(READERS).take(4_096) {
                        spurious += contains(filter, k) as usize;
                    }
                    for &k in keys.iter().skip(r).step_by(READERS).take(4_096) {
                        std::hint::black_box(contains(filter, k));
                    }
                }
                assert!(spurious < negatives.len(), "reader saw only positives");
            });
        }
        // Writers are the first WRITERS spawned handles; scope joins
        // everything, so just flip the flag when inserts finish.
        // (Spawn order guarantees nothing about completion order; the
        // flag is flipped by a dedicated watcher thread.)
        let (done, keys) = (&done, &keys);
        s.spawn(move || {
            // Watcher: all writers work on disjoint chunks of `keys`;
            // completion is detected by polling the last key of each
            // chunk. Simpler: writers signal via the scope exiting —
            // but readers must stop for the scope to exit, so poll
            // membership of every chunk's final key instead.
            loop {
                let all_in = keys
                    .chunks(keys.len().div_ceil(WRITERS))
                    .all(|c| contains(filter, *c.last().unwrap()));
                if all_in {
                    done.store(true, Ordering::Release);
                    return;
                }
                std::thread::yield_now();
            }
        });
    });
}

#[test]
fn sharded_bloom_storm_no_false_negatives() {
    let f: Sharded<BloomFilter> = Sharded::new(4, |i| {
        BloomFilter::with_seed(60_000, 0.01, 0xb100 ^ i as u64)
    });
    let keys = unique_keys(900, 60_000);
    let negatives = disjoint_keys(901, 60_000, &keys);
    write_read_storm(
        &f,
        &keys,
        &negatives,
        |f, chunk| f.insert_batch(chunk).unwrap(),
        |f, k| f.contains(k),
    );
    assert!(keys.iter().all(|&k| f.contains(k)), "false negative");
    assert_eq!(f.len(), 60_000);
    let fpr = negatives.iter().filter(|&&k| f.contains(k)).count() as f64 / 60_000.0;
    assert!(fpr < 0.02, "fpr {fpr}");
}

#[test]
fn sharded_cqf_storm_counts_never_undercount() {
    const REPEATS: u64 = 3;
    let f: Sharded<CountingQuotientFilter> = Sharded::new(3, |i| {
        let mut q = CountingQuotientFilter::with_seed(13, 9, 0xcf90 ^ i as u64);
        q.set_auto_expand(true);
        q
    });
    let keys = unique_keys(902, 4_000);
    // Every writer inserts ALL keys REPEATS times (maximal cross-shard
    // contention), racing readers that check counts are monotone.
    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let (f, keys) = (&f, &keys);
            s.spawn(move || {
                for _ in 0..REPEATS {
                    for &k in keys {
                        f.insert_count(k, 1).unwrap();
                    }
                }
            });
        }
        for r in 0..READERS {
            let (f, keys) = (&f, &keys);
            s.spawn(move || {
                for &k in keys.iter().skip(r).step_by(READERS) {
                    let c = f.count(k);
                    assert!(
                        c <= WRITERS as u64 * REPEATS + 64,
                        "count {c} exceeds any possible insert total"
                    );
                }
            });
        }
    });
    for &k in &keys {
        assert!(
            f.count(k) >= WRITERS as u64 * REPEATS,
            "undercount: {} < {}",
            f.count(k),
            WRITERS as u64 * REPEATS
        );
    }
}

#[test]
fn atomic_blocked_bloom_storm_no_false_negatives() {
    let f = AtomicBlockedBloomFilter::new(60_000, 0.01);
    let keys = unique_keys(903, 60_000);
    let negatives = disjoint_keys(904, 60_000, &keys);
    write_read_storm(
        &f,
        &keys,
        &negatives,
        |f, chunk| f.insert_batch(chunk),
        |f, k| f.contains(k),
    );
    assert!(keys.iter().all(|&k| f.contains(k)), "false negative");
    assert_eq!(Filter::len(&f), 60_000);
    let fpr = negatives.iter().filter(|&&k| f.contains(k)).count() as f64 / 60_000.0;
    assert!(fpr < 0.025, "fpr {fpr}");
}

#[test]
fn sharded_mixed_insert_remove_query_does_not_deadlock() {
    // Insert/remove/query threads over a sharded cuckoo filter: the
    // test passing at all demonstrates lock-freedom from deadlock
    // (each operation locks exactly one shard).
    let f = beyond_bloom::cuckoo::CuckooFilter::sharded(40_000, 14, 4);
    let stable = unique_keys(905, 10_000);
    let churn = disjoint_keys(906, 10_000, &stable);
    f.insert_batch(&stable).unwrap();
    std::thread::scope(|s| {
        for chunk in churn.chunks(churn.len().div_ceil(2)) {
            let f = &f;
            s.spawn(move || {
                for &k in chunk {
                    f.insert(k).unwrap();
                    assert!(f.contains(k));
                    assert!(f.remove(k).unwrap());
                }
            });
        }
        for r in 0..READERS {
            let (f, stable) = (&f, &stable);
            s.spawn(move || {
                for &k in stable.iter().skip(r).step_by(READERS) {
                    assert!(f.contains(k), "stable key {k} vanished");
                }
            });
        }
    });
    assert!(stable.iter().all(|&k| f.contains(k)));
}

#[test]
fn batch_and_pointwise_agree_under_concurrency() {
    // Two filters built identically; one fed by concurrent batch
    // inserts, one serially pointwise. Final membership on every
    // probe must agree exactly (same shards, same seeds).
    let build = || -> Sharded<BloomFilter> {
        Sharded::new(3, |i| {
            BloomFilter::with_seed(30_000, 0.01, 0xabcd ^ i as u64)
        })
    };
    let concurrent_f = build();
    let serial_f = build();
    let keys = unique_keys(907, 30_000);
    std::thread::scope(|s| {
        for chunk in keys.chunks(7_500) {
            let f = &concurrent_f;
            s.spawn(move || f.insert_batch(chunk).unwrap());
        }
    });
    for &k in &keys {
        serial_f.insert(k).unwrap();
    }
    let probes = unique_keys(908, 60_000);
    for &k in &probes {
        assert_eq!(concurrent_f.contains(k), serial_f.contains(k), "key {k}");
    }
}

#[test]
fn poisoned_shard_recovery_emits_telemetry() {
    // Satellite: a thread that panics while holding a shard lock
    // poisons the mutex; the recovery path must both hand out the
    // guard (no cascading panic) and record the recovery in the
    // telemetry layer — counter and structured event.
    if beyond_bloom::telemetry::compiled_out() {
        return; // telemetry-off build: nothing to observe
    }
    let f: Sharded<BloomFilter> = Sharded::new(2, |i| {
        BloomFilter::with_seed(1_000, 0.01, 0x9909 ^ i as u64)
    });
    let before = beyond_bloom::concurrent::POISON_RECOVERIES.get();
    let victim = 42u64;
    // Poison the shard holding `victim` from a scoped thread whose
    // panic we swallow (and silence) at the join.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let joined = std::thread::scope(|s| {
        s.spawn(|| {
            f.with_shard(victim, |_| panic!("poison the shard"));
        })
        .join()
    });
    std::panic::set_hook(prev_hook);
    assert!(joined.is_err(), "the poisoning thread must have panicked");
    // The next operation on that shard recovers the poisoned lock.
    f.insert(victim).unwrap();
    assert!(f.contains(victim));
    let after = beyond_bloom::concurrent::POISON_RECOVERIES.get();
    assert!(
        after > before,
        "poison recovery counter did not move ({before} -> {after})"
    );
    let events = beyond_bloom::telemetry::events().snapshot();
    assert!(
        events
            .iter()
            .any(|e| e.kind == beyond_bloom::telemetry::EventKind::ShardPoisonRecovered),
        "no shard-poison-recovered event in the ring"
    );
}

#[test]
fn metrics_are_consistent_across_threads() {
    // Satellite: N writer threads bump shared counters and
    // histograms; the totals must equal the sum of per-thread oracle
    // counts exactly — relaxed atomics lose no increments.
    use beyond_bloom::telemetry::{Counter, Histogram};
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let counter = Counter::new();
    let hist = Histogram::new();
    let oracle_sums: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (counter, hist) = (&counter, &hist);
                s.spawn(move || {
                    let mut local_sum = 0u64;
                    for i in 0..PER_THREAD {
                        counter.add(1 + (i % 3));
                        let v = t * 1_000 + i % 7;
                        hist.observe(v);
                        local_sum += v;
                    }
                    local_sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Counter: each thread adds 1 + (i % 3) for i in 0..PER_THREAD.
    let per_thread_counter: u64 = (0..PER_THREAD).map(|i| 1 + (i % 3)).sum();
    assert_eq!(counter.get(), THREADS * per_thread_counter);
    // Histogram: total count and sum match the oracle exactly.
    let snap = hist.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    assert_eq!(snap.sum(), oracle_sums.iter().sum::<u64>());
    // Per-shard op counters on a sharded filter agree with the total
    // number of pointwise operations issued.
    if !beyond_bloom::telemetry::compiled_out() {
        beyond_bloom::telemetry::set_enabled(true);
        let f: Sharded<BloomFilter> = Sharded::new(3, |i| {
            BloomFilter::with_seed(10_000, 0.01, 0x5eed ^ i as u64)
        });
        let keys = unique_keys(909, 8_000);
        std::thread::scope(|s| {
            for chunk in keys.chunks(2_000) {
                let f = &f;
                s.spawn(move || {
                    for &k in chunk {
                        f.insert(k).unwrap();
                    }
                });
            }
        });
        let ops = f.shard_ops();
        assert_eq!(ops.len(), 8);
        assert_eq!(ops.iter().sum::<u64>(), 8_000);
    }
}
