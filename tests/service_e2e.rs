//! End-to-end tests for the filter service: a real server on an
//! ephemeral loopback port, real TCP clients, and the three hostile
//! scenarios the wire layer must survive (mid-frame disconnect,
//! adversarial length prefix, racing shutdown). The CI workflow also
//! runs this file in `--release` so socket timing and codegen match
//! production.

use beyond_bloom::core::InsertFilter;
use beyond_bloom::core::{BatchedFilter, Filter};
use beyond_bloom::cuckoo::CuckooFilter;
use beyond_bloom::quotient::CountingQuotientFilter;
use beyond_bloom::service::proto::{write_frame, FrameEvent, FrameReader};
use beyond_bloom::service::{
    build_atomic_bloom, build_sharded_cqf, build_sharded_cuckoo, build_sharded_register_bloom,
    build_sharded_two_choice, Backend, ClientError, ClusterClient, CountersSnapshot, ErrorCode,
    EventedFilterServer, FilterClient, FilterServer, Request, Response, ServerConfig,
    DEFAULT_MAX_FRAME,
};
use beyond_bloom::workloads::{disjoint_keys, unique_keys, zipf_keys};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn start() -> (FilterServer, std::net::SocketAddr) {
    let server = FilterServer::bind("127.0.0.1:0", test_config()).expect("bind ephemeral");
    let addr = server.local_addr();
    (server, addr)
}

/// Poll STATS until `pred` holds or the deadline passes. Counter
/// updates race the client's view of its own connection teardown, so
/// robustness assertions poll rather than sleep.
fn wait_for_stats(
    client: &mut FilterClient,
    pred: impl Fn(&beyond_bloom::service::StatsReport) -> bool,
) -> beyond_bloom::service::StatsReport {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats().expect("stats");
        if pred(&stats) || Instant::now() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------
// Fixed-seed regression: batch CONTAINS over the wire must be
// bit-identical to the in-process oracle built by the same
// (capacity, eps, shard_bits, seed) recipe the server uses.
// ---------------------------------------------------------------

#[test]
fn wire_contains_matches_in_process_oracle() {
    const CAP: u64 = 50_000;
    const EPS: f64 = 1.0 / 128.0;
    const SEED: u64 = 0x05ee_de19;
    let keys = unique_keys(7_001, CAP as usize / 2);
    let probes = disjoint_keys(7_002, 20_000, &keys);
    let all: Vec<u64> = keys.iter().chain(&probes).copied().collect();

    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();

    // Oracles: the same builders the server's CREATE path calls.
    let bloom = build_atomic_bloom(CAP, EPS, SEED);
    bloom.insert_batch(&keys);
    let cuckoo = build_sharded_cuckoo(CAP, EPS, 3, SEED);
    cuckoo.insert_batch(&keys).unwrap();
    let cqf = build_sharded_cqf(CAP, EPS, 3, SEED);
    cqf.insert_batch(&keys).unwrap();
    let regbloom = build_sharded_register_bloom(CAP, EPS, 3, SEED);
    regbloom.insert_batch(&keys).unwrap();
    let twochoice = build_sharded_two_choice(CAP, EPS, 3, SEED);
    twochoice.insert_batch(&keys).unwrap();

    c.create("b", Backend::AtomicBloom, CAP, EPS, 3, SEED)
        .unwrap();
    c.create("c", Backend::ShardedCuckoo, CAP, EPS, 3, SEED)
        .unwrap();
    c.create("q", Backend::ShardedCqf, CAP, EPS, 3, SEED)
        .unwrap();
    c.create("r", Backend::RegisterBloom, CAP, EPS, 3, SEED)
        .unwrap();
    c.create("t", Backend::TwoChoiceBloom, CAP, EPS, 3, SEED)
        .unwrap();
    for chunk in keys.chunks(4096) {
        c.insert("b", chunk).unwrap();
        c.insert("c", chunk).unwrap();
        c.insert("q", chunk).unwrap();
        c.insert("r", chunk).unwrap();
        c.insert("t", chunk).unwrap();
    }

    for chunk in all.chunks(1013) {
        assert_eq!(c.contains("b", chunk).unwrap(), bloom.contains_batch(chunk));
        assert_eq!(
            c.contains("c", chunk).unwrap(),
            cuckoo.contains_batch(chunk)
        );
        assert_eq!(c.contains("q", chunk).unwrap(), cqf.contains_batch(chunk));
        assert_eq!(
            c.contains("r", chunk).unwrap(),
            regbloom.contains_batch(chunk)
        );
        assert_eq!(
            c.contains("t", chunk).unwrap(),
            twochoice.contains_batch(chunk)
        );
    }
    // Counting parity on a skewed multiset (CQF only).
    let dupes = zipf_keys(7_003, 1_000, 1.2, 0x5a17, 5_000);
    for chunk in dupes.chunks(512) {
        c.insert("q", chunk).unwrap();
        cqf.insert_batch(chunk).unwrap();
    }
    let hot: Vec<u64> = dupes.iter().take(500).copied().collect();
    assert_eq!(c.count("q", &hot).unwrap(), cqf.count_batch(&hot));

    drop(c);
    server.shutdown();
}

// ---------------------------------------------------------------
// Full CRUD across backends, including pre-built blob CREATE.
// ---------------------------------------------------------------

#[test]
fn crud_and_stats_roundtrip() {
    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();
    let keys = unique_keys(7_100, 10_000);

    c.create("cf", Backend::ShardedCuckoo, 20_000, 0.01, 2, 9)
        .unwrap();
    c.insert("cf", &keys).unwrap();
    assert!(c.contains("cf", &keys).unwrap().iter().all(|&b| b));
    let removed = c.delete("cf", &keys[..100]).unwrap();
    assert!(removed.iter().all(|&b| b), "all present keys must remove");

    c.create("qf", Backend::ShardedCqf, 20_000, 0.01, 2, 9)
        .unwrap();
    c.insert("qf", &keys[..1_000]).unwrap();
    c.insert("qf", &keys[..1_000]).unwrap(); // duplicates count
    let counts = c.count("qf", &keys[..1_000]).unwrap();
    assert!(
        counts.iter().all(|&n| n >= 2),
        "CQF counts never undercount"
    );
    let removed = c.delete("qf", &keys[..1_000]).unwrap();
    assert!(removed.iter().all(|&b| b));

    // Pre-built blobs: build + fill in-process, ship, query remotely.
    let mut built = CuckooFilter::new(5_000, 12);
    for &k in &keys[..4_000] {
        built.insert(k).unwrap();
    }
    c.create_prebuilt("shipped-cf", Backend::ShardedCuckoo, built.to_bytes())
        .unwrap();
    let oracle: Vec<bool> = keys[..4_000].iter().map(|&k| built.contains(k)).collect();
    assert_eq!(c.contains("shipped-cf", &keys[..4_000]).unwrap(), oracle);

    let mut built = CountingQuotientFilter::for_capacity(5_000, 0.01);
    for &k in &keys[..3_000] {
        built.insert(k).unwrap();
    }
    c.create_prebuilt("shipped-qf", Backend::ShardedCqf, built.to_bytes())
        .unwrap();
    assert!(c
        .contains("shipped-qf", &keys[..3_000])
        .unwrap()
        .iter()
        .all(|&b| b));

    let mut built = beyond_bloom::bloom::RegisterBlockedBloomFilter::with_seed(5_000, 0.01, 21);
    for &k in &keys[..2_000] {
        built.insert(k).unwrap();
    }
    c.create_prebuilt("shipped-rb", Backend::RegisterBloom, built.to_bytes())
        .unwrap();
    let oracle: Vec<bool> = keys[..4_000].iter().map(|&k| built.contains(k)).collect();
    assert_eq!(c.contains("shipped-rb", &keys[..4_000]).unwrap(), oracle);
    // Membership-only backend: COUNT and DELETE are clean errors.
    for e in [
        c.count("shipped-rb", &keys[..4]).unwrap_err(),
        c.delete("shipped-rb", &keys[..4]).unwrap_err(),
    ] {
        assert!(matches!(
            e,
            ClientError::Remote {
                code: ErrorCode::Unsupported,
                ..
            }
        ));
    }

    let mut built = beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::with_seed(5_000, 0.01, 22);
    for &k in &keys[..2_000] {
        built.insert(k).unwrap();
    }
    c.create_prebuilt("shipped-tc", Backend::TwoChoiceBloom, built.to_bytes())
        .unwrap();
    let oracle: Vec<bool> = keys[..4_000].iter().map(|&k| built.contains(k)).collect();
    assert_eq!(c.contains("shipped-tc", &keys[..4_000]).unwrap(), oracle);

    let stats = c.stats().unwrap();
    assert_eq!(stats.filters.len(), 6, "registry lists every instance");
    assert!(stats.filters.iter().any(|f| f.name == "shipped-cf"));
    assert!(stats.counters.keys_processed > 0);
    // Every INSERT/CONTAINS above shipped multi-key requests, so all of
    // that traffic went through the batched probe kernels — but DELETE
    // and COUNT keys are counted in keys_processed only.
    assert!(stats.counters.batched_ops > 0);
    assert!(stats.counters.batched_ops <= stats.counters.keys_processed);
    assert!(stats.counters.request_latency.count() > 0);

    drop(c);
    server.shutdown();
}

// ---------------------------------------------------------------
// The compacting backend over the wire: CREATE/INSERT/CONTAINS
// parity with the in-process builder, blob-CREATE of a mid-lifecycle
// snapshot, and clean Unsupported errors for COUNT/DELETE.
// ---------------------------------------------------------------

#[test]
fn compacting_backend_over_the_wire() {
    const CAP: u64 = 40_000;
    const EPS: f64 = 1.0 / 256.0;
    const SEED: u64 = 0xc0a7;
    let keys = unique_keys(7_300, CAP as usize / 2);
    let probes = disjoint_keys(7_301, 20_000, &keys);
    let all: Vec<u64> = keys.iter().chain(&probes).copied().collect();

    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();

    // Oracle: the same builder the server's CREATE path calls.
    let oracle = beyond_bloom::service::build_compacting(CAP, EPS, SEED);
    for &k in &keys {
        oracle.insert(k);
    }

    c.create("lsm", Backend::Compacting, CAP, EPS, 0, SEED)
        .unwrap();
    for chunk in keys.chunks(4096) {
        c.insert("lsm", chunk).unwrap();
    }
    // No-false-negative parity with the oracle for every inserted
    // key. (Exact false-positive parity is NOT expected: background
    // compaction timing decides which sealed fronts have merged into
    // tiers at query time, and different tier partitions hash
    // negatives differently.)
    assert!(oracle.contains_batch(&keys).iter().all(|&b| b));
    for chunk in keys.chunks(1013) {
        assert!(c.contains("lsm", chunk).unwrap().iter().all(|&b| b));
    }
    // Negative probes stay near the configured budget even with the
    // layered front + tiers each contributing their share.
    let fp: usize = probes
        .chunks(1013)
        .map(|chunk| {
            c.contains("lsm", chunk)
                .unwrap()
                .iter()
                .filter(|&&b| b)
                .count()
        })
        .sum();
    let fpr = fp as f64 / probes.len() as f64;
    assert!(fpr < 10.0 * EPS, "wire FPR {fpr} implausibly high");

    // Mutability-only ops are clean errors, not panics.
    for e in [
        c.count("lsm", &keys[..4]).unwrap_err(),
        c.delete("lsm", &keys[..4]).unwrap_err(),
    ] {
        assert!(matches!(
            e,
            ClientError::Remote {
                code: ErrorCode::Unsupported,
                ..
            }
        ));
    }

    // Blob CREATE: snapshot the oracle mid-lifecycle (insert more so
    // the front and sealed queue are non-empty), ship it, and query.
    let more = disjoint_keys(7_302, 5_000, &all);
    for &k in &more {
        oracle.insert(k);
    }
    c.create_prebuilt("shipped-lsm", Backend::Compacting, oracle.to_bytes())
        .unwrap();
    let shipped_probe: Vec<u64> = keys.iter().chain(&more).copied().collect();
    assert!(c
        .contains("shipped-lsm", &shipped_probe)
        .unwrap()
        .iter()
        .all(|&b| b));
    // And the restored instance keeps accepting inserts.
    let extra = disjoint_keys(7_303, 1_000, &shipped_probe);
    c.insert("shipped-lsm", &extra).unwrap();
    assert!(c
        .contains("shipped-lsm", &extra)
        .unwrap()
        .iter()
        .all(|&b| b));

    // Garbage blobs are a Filter error, not a crash.
    match c.create_prebuilt("bad-lsm", Backend::Compacting, vec![0xde, 0xad, 0xbe]) {
        Err(ClientError::Remote {
            code: ErrorCode::Filter,
            ..
        }) => {}
        other => panic!("expected Filter error, got {other:?}"),
    }

    // STATS reports the backend by name with a sane key count.
    let stats = c.stats().unwrap();
    let row = stats
        .filters
        .iter()
        .find(|f| f.name == "lsm")
        .expect("registry row");
    assert_eq!(row.backend, Backend::Compacting);
    assert_eq!(row.backend.name(), "compacting");
    assert_eq!(row.len, keys.len() as u64);
    assert!(row.size_in_bytes > 0);

    drop(c);
    server.shutdown();
}

// ---------------------------------------------------------------
// Error paths are responses, not panics or hangs.
// ---------------------------------------------------------------

#[test]
fn error_codes_are_precise() {
    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();

    let remote_code = |r: Result<_, ClientError>| match r {
        Err(ClientError::Remote { code, .. }) => code,
        other => panic!("expected remote error, got {other:?}"),
    };

    assert_eq!(
        remote_code(c.insert("ghost", &[1]).map(|_| ())),
        ErrorCode::NoSuchFilter
    );
    c.create("a", Backend::AtomicBloom, 1_000, 0.01, 0, 1)
        .unwrap();
    assert_eq!(
        remote_code(
            c.create("a", Backend::AtomicBloom, 1_000, 0.01, 0, 1)
                .map(|_| ())
        ),
        ErrorCode::FilterExists
    );
    assert_eq!(
        remote_code(c.count("a", &[1]).map(|_| ())),
        ErrorCode::Unsupported
    );
    assert_eq!(
        remote_code(c.delete("a", &[1]).map(|_| ())),
        ErrorCode::Unsupported
    );
    // Atomic-bloom blobs ARE supported (snapshot migration relies on
    // them), so garbage is a decode failure, not Unsupported.
    assert_eq!(
        remote_code(
            c.create_prebuilt("blob-bloom", Backend::AtomicBloom, vec![1, 2, 3])
                .map(|_| ())
        ),
        ErrorCode::Filter
    );
    assert_eq!(
        remote_code(
            c.create_prebuilt("bad-blob", Backend::ShardedCuckoo, vec![0xde, 0xad])
                .map(|_| ())
        ),
        ErrorCode::Filter
    );
    assert_eq!(
        remote_code(
            c.create("bad name", Backend::AtomicBloom, 1_000, 0.01, 0, 1)
                .map(|_| ())
        ),
        ErrorCode::BadName
    );
    assert_eq!(
        remote_code(
            c.create("big", Backend::AtomicBloom, u64::MAX, 0.01, 0, 1)
                .map(|_| ())
        ),
        ErrorCode::Filter
    );

    // The connection is still perfectly usable after every error.
    c.insert("a", &[42]).unwrap();
    assert!(c.contains("a", &[42]).unwrap()[0]);

    drop(c);
    server.shutdown();
}

// ---------------------------------------------------------------
// Robustness: a peer dying mid-frame or shipping an absurd length
// prefix must not wedge or crash a worker; the server keeps accepting
// and STATS records the event.
// ---------------------------------------------------------------

#[test]
fn mid_frame_disconnect_does_not_wedge_server() {
    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();
    c.create("t", Backend::AtomicBloom, 1_000, 0.01, 0, 1)
        .unwrap();

    // Announce a 1 KiB frame, send 10 bytes, vanish.
    {
        let mut rude = TcpStream::connect(addr).unwrap();
        rude.write_all(&1024u32.to_le_bytes()).unwrap();
        rude.write_all(&[0xab; 10]).unwrap();
    } // dropped: RST/EOF mid-frame

    // The worker that served the rude client is released and the
    // server still answers on both old and new connections.
    let stats = wait_for_stats(&mut c, |s| s.counters.disconnects_mid_frame >= 1);
    assert!(
        stats.counters.disconnects_mid_frame >= 1,
        "STATS must count the mid-frame disconnect"
    );
    let mut fresh = FilterClient::connect(addr).unwrap();
    fresh.insert("t", &[7]).unwrap();
    assert!(c.contains("t", &[7]).unwrap()[0]);

    drop((c, fresh));
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_and_counted() {
    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();
    c.create("t", Backend::AtomicBloom, 1_000, 0.01, 0, 1)
        .unwrap();

    // A length prefix far past the frame limit: the server must
    // refuse before allocating, answer with BadFrame, and close.
    let mut rude = TcpStream::connect(addr).unwrap();
    rude.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut reader = beyond_bloom::service::proto::FrameReader::new(
        rude.try_clone().unwrap(),
        beyond_bloom::service::DEFAULT_MAX_FRAME,
    );
    match reader.read_frame() {
        Ok(beyond_bloom::service::proto::FrameEvent::Frame(payload, _)) => {
            match beyond_bloom::service::Response::decode(&payload).unwrap() {
                beyond_bloom::service::Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::BadFrame)
                }
                other => panic!("expected error response, got {other:?}"),
            }
        }
        other => panic!("expected a response frame before close, got {other:?}"),
    }
    drop((reader, rude));

    let stats = wait_for_stats(&mut c, |s| s.counters.protocol_errors >= 1);
    assert!(stats.counters.protocol_errors >= 1);
    // And the server is still fully operational.
    c.insert("t", &[9]).unwrap();
    assert!(c.contains("t", &[9]).unwrap()[0]);

    drop(c);
    server.shutdown();
}

#[test]
fn malformed_payload_gets_error_response_and_connection_survives() {
    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();
    // A well-framed but garbage payload: BadFrame response, same
    // connection keeps working (framing is still in sync). The next
    // read returns the error response to the garbage frame...
    beyond_bloom::service::proto::write_frame(c.stream(), &[0u8; 16]).unwrap();
    match c.call(&beyond_bloom::service::Request::Stats).unwrap() {
        beyond_bloom::service::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    // ...and the stream is back in lockstep: the pending STATS answer.
    match c.call(&beyond_bloom::service::Request::Stats).unwrap() {
        beyond_bloom::service::Response::Stats(s) => {
            assert!(s.counters.protocol_errors >= 1)
        }
        other => panic!("expected stats, got {other:?}"),
    }
    drop(c);
    server.shutdown();
}

// ---------------------------------------------------------------
// Graceful shutdown drains in-flight work and joins every thread.
// ---------------------------------------------------------------

#[test]
fn shutdown_drains_in_flight_requests() {
    let (server, addr) = start();
    let mut c = FilterClient::connect(addr).unwrap();
    c.create("t", Backend::ShardedCuckoo, 100_000, 0.01, 2, 3)
        .unwrap();
    let keys = unique_keys(7_200, 50_000);

    // Fire a large insert from another thread, then shut down while
    // it is (likely) in flight: the request must either complete with
    // Ok or observe an orderly close — never a hang or a panic.
    let handle = std::thread::spawn(move || {
        let mut busy = FilterClient::connect(addr).unwrap();
        busy.insert("t", &keys)
    });
    std::thread::sleep(Duration::from_millis(5));
    server.shutdown(); // joins accept + workers; must not deadlock
    match handle.join().expect("client thread must not panic") {
        Ok(()) | Err(ClientError::ServerClosed) | Err(ClientError::Io(_)) => {}
        Err(e) => panic!("unexpected drain outcome: {e}"),
    }
    // After shutdown the port no longer serves the protocol: either
    // the connect fails outright or the connection yields no response.
    match FilterClient::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            assert!(
                late.stats().is_err(),
                "server must not answer after shutdown"
            )
        }
    }
    drop(c);
}

#[test]
fn metrics_exposition_is_valid_and_spans_layers() {
    // The METRICS opcode must return parseable Prometheus text with
    // families from every instrumented layer: bloom, cuckoo,
    // quotient, concurrent, and the service itself. A zero
    // slow-request threshold makes every request slow, so the
    // slow-request log is guaranteed non-empty.
    let server = FilterServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            read_timeout: Duration::from_millis(10),
            slow_request_threshold: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral");
    let addr = server.local_addr();
    let mut c = FilterClient::connect(addr).unwrap();
    c.create("mx-cuckoo", Backend::ShardedCuckoo, 20_000, 0.01, 3, 11)
        .unwrap();
    c.create("mx-cqf", Backend::ShardedCqf, 20_000, 0.01, 3, 12)
        .unwrap();
    c.create("mx-bloom", Backend::AtomicBloom, 20_000, 0.01, 0, 13)
        .unwrap();
    let keys = unique_keys(910, 5_000);
    c.insert("mx-cuckoo", &keys).unwrap();
    c.insert("mx-cqf", &keys).unwrap();
    c.insert("mx-bloom", &keys).unwrap();
    let _ = c.contains("mx-cuckoo", &keys).unwrap();
    let _ = c.count("mx-cqf", &keys[..100]).unwrap();

    let text = c.metrics_text().unwrap();
    let expo = beyond_bloom::telemetry::expo::parse(&text)
        .unwrap_or_else(|e| panic!("exposition failed validation: {e}\n---\n{text}"));

    // Acceptance: >= 10 distinct families spanning all five layers.
    assert!(
        expo.family_count() >= 10,
        "only {} families:\n{}",
        expo.family_count(),
        expo.family_names().collect::<Vec<_>>().join("\n")
    );
    let compiled_out = beyond_bloom::telemetry::compiled_out();
    if !compiled_out {
        // Filter-layer families (registered eagerly at bind).
        for fam in [
            "bb_bloom_scalable_expansions_total",      // bloom
            "bb_cuckoo_kick_chain_length",             // cuckoo
            "bb_cqf_cluster_length",                   // quotient
            "bb_sharded_lock_poison_recoveries_total", // concurrent
            "bb_service_requests_total",               // service
        ] {
            assert!(expo.has_family(fam), "missing family {fam}:\n{text}");
        }
        assert!(expo.value("bb_service_requests_total").unwrap() > 0.0);
        // The sharded inserts exercised per-shard op accounting.
        assert!(expo.labeled_sum("bb_filter_shard_ops_total", "mx-cuckoo") > 0.0);
    }
    // Server families render regardless of build mode.
    for fam in [
        "bb_server_frames_received_total",
        "bb_server_keys_processed_total",
        "bb_server_request_latency_ns",
        "bb_server_accept_errors_total",
        "bb_server_open_connections",
        "bb_server_pipelined_depth",
        "bb_filter_keys",
        "bb_filter_size_bytes",
        "bb_filter_inventory_truncated",
        "bb_bloofi_depth",
        "bb_bloofi_nodes",
    ] {
        assert!(expo.has_family(fam), "missing family {fam}");
    }
    // Three filters fit comfortably under the inventory series cap.
    assert_eq!(expo.value("bb_filter_inventory_truncated").unwrap(), 0.0);
    // The hierarchical index tracks every registered filter.
    assert!(expo.value("bb_bloofi_nodes").unwrap() >= 1.0);
    // The SIMD tier info gauge is exported at registry init and
    // matches the level the dispatcher actually resolved.
    assert_eq!(
        expo.value("bb_simd_level").unwrap(),
        beyond_bloom::core::simd::active_level().code() as f64,
        "bb_simd_level must report the active dispatch tier"
    );
    // Our own connection is open while METRICS renders, and every
    // serviced frame raises the pipelining watermark to at least 1.
    assert!(expo.value("bb_server_open_connections").unwrap() >= 1.0);
    assert!(expo.value("bb_server_pipelined_depth").unwrap() >= 1.0);
    assert_eq!(expo.value("bb_server_accept_errors_total").unwrap(), 0.0);
    assert!(expo.value("bb_server_keys_processed_total").unwrap() >= 15_000.0);
    assert!(expo.value("bb_server_request_latency_ns_count").unwrap() > 0.0);
    // Approximate: CQF key counts can undercount by fingerprint
    // collisions merging distinct keys.
    assert!(expo.labeled_sum("bb_filter_keys", "mx-cqf") >= 4_950.0);
    // Zero threshold: every request is slow, so the slow counter
    // moved and the log rendered entries (the slow log is engine
    // state, not telemetry, so it works in every build mode).
    let stats = c.stats().unwrap();
    assert!(stats.counters.slow_requests > 0);
    assert!(
        text.lines().any(|l| l.starts_with("# slow ")),
        "no slow-request log lines:\n{text}"
    );
    // Slow entries carry decoded opcode context and the client's
    // peer address (every entry here came over a real TCP socket).
    assert!(text.contains("op=INSERT") || text.contains("op=CREATE"));
    assert!(
        text.lines()
            .filter(|l| l.starts_with("# slow "))
            .all(|l| l.contains(" peer=127.0.0.1:")),
        "slow lines must carry the TCP peer:\n{text}"
    );

    // Ring-overwrite accounting: the bounded logs export how much
    // they have silently discarded. Drive the 256-entry slow log
    // past capacity (every request is slow at threshold zero) and
    // wrap the global event ring in-process, then check the drop
    // counters moved.
    for fam in [
        "bb_events_dropped",
        "bb_slow_log_dropped",
        "bb_traces_dropped_total",
    ] {
        assert!(expo.has_family(fam), "missing drop counter {fam}");
    }
    assert_eq!(expo.value("bb_slow_log_dropped").unwrap(), 0.0);
    let probe = [1u64];
    for _ in 0..300 {
        let _ = c.contains("mx-bloom", &probe).unwrap();
    }
    for i in 0..1_100 {
        beyond_bloom::telemetry::emit(beyond_bloom::telemetry::EventKind::Other, i, 0);
    }
    let text = c.metrics_text().unwrap();
    let expo = beyond_bloom::telemetry::expo::parse(&text).expect("post-wrap exposition");
    assert!(
        expo.value("bb_slow_log_dropped").unwrap() > 0.0,
        "slow log wrapped >300 entries past its 256 cap:\n{text}"
    );
    if !compiled_out {
        assert!(
            expo.value("bb_events_dropped").unwrap() > 0.0,
            "event ring wrapped after 1100 emits into 1024 slots"
        );
    }
    drop(c);
    server.shutdown();

    // The evented transport renders the same exposition through the
    // same engine: spot-check the server families over its wire.
    let server = EventedFilterServer::bind("127.0.0.1:0", test_config()).expect("bind evented");
    let mut c = FilterClient::connect(server.local_addr()).unwrap();
    c.create("mx-ev", Backend::AtomicBloom, 10_000, 0.01, 0, 14)
        .unwrap();
    c.insert("mx-ev", &unique_keys(911, 1_000)).unwrap();
    // Push the registry past the inventory series cap: the per-filter
    // gauges stop at 64 series and the overflow is reported, not
    // silently dropped.
    for i in 0..70 {
        c.create(
            &format!("mx-cap-{i:03}"),
            Backend::AtomicBloom,
            64,
            0.01,
            0,
            i,
        )
        .unwrap();
    }
    let text = c.metrics_text().unwrap();
    let expo = beyond_bloom::telemetry::expo::parse(&text)
        .unwrap_or_else(|e| panic!("evented exposition failed validation: {e}\n---\n{text}"));
    for fam in [
        "bb_server_frames_received_total",
        "bb_server_accept_errors_total",
        "bb_server_open_connections",
        "bb_server_pipelined_depth",
    ] {
        assert!(expo.has_family(fam), "missing family {fam}");
    }
    assert!(expo.value("bb_server_open_connections").unwrap() >= 1.0);
    assert_eq!(
        expo.value("bb_simd_level").unwrap(),
        beyond_bloom::core::simd::active_level().code() as f64,
        "evented transport must export the same SIMD tier gauge"
    );
    // 71 registered filters, 64-series inventory cap: exactly 7
    // omitted, and the gauge says so.
    assert_eq!(
        expo.value("bb_filter_inventory_truncated").unwrap(),
        7.0,
        "inventory truncation gauge must count omitted filters"
    );
    assert_eq!(
        text.matches("bb_filter_keys{").count(),
        64,
        "per-filter inventory must stop at the series cap"
    );
    drop(c);
    server.shutdown();
}

// ===============================================================
// Threaded-vs-evented equivalence: one scripted CRUD + batch +
// adversarial sequence, run verbatim against both transports, must
// produce byte-identical response frames and identical deltas for
// every deterministic counter. Parity is by construction (both
// transports funnel through `engine::dispatch`); this test pins it.
// ===============================================================

/// A raw frame-level connection: lets the script control exactly
/// what bytes hit the wire and capture exactly what comes back.
struct RawConn {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl RawConn {
    fn connect(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let reader = FrameReader::new(stream.try_clone().unwrap(), DEFAULT_MAX_FRAME);
        RawConn { stream, reader }
    }

    fn send(&mut self, req: &Request) {
        write_frame(&mut self.stream, &req.encode()).expect("send frame");
    }

    fn recv(&mut self) -> Vec<u8> {
        match self.reader.read_frame().expect("read frame") {
            FrameEvent::Frame(payload, _) => payload,
            FrameEvent::Closed => panic!("server closed mid-script"),
        }
    }

    fn call(&mut self, req: &Request) -> Vec<u8> {
        self.send(req);
        self.recv()
    }
}

fn create_req(name: &str, backend: Backend, shard_bits: u32) -> Request {
    Request::Create {
        name: name.to_string(),
        backend,
        capacity: 10_000,
        eps: 1.0 / 128.0,
        shard_bits,
        seed: 0x5eed,
        blob: Vec::new(),
    }
}

fn blob_req(name: &str, backend: Backend, blob: Vec<u8>) -> Request {
    Request::Create {
        name: name.to_string(),
        backend,
        capacity: 0,
        eps: 0.0,
        shard_bits: 0,
        seed: 0,
        blob,
    }
}

/// The deterministic counters a scripted workload must move
/// identically on both transports. Latency, slow-request, and
/// connection-lifecycle counters are excluded: they depend on timing,
/// not on what was served.
fn deterministic_counters(c: &CountersSnapshot) -> [u64; 8] {
    [
        c.frames_received,
        c.responses_sent,
        c.protocol_errors,
        c.error_responses,
        c.keys_processed,
        c.batched_ops,
        c.bytes_in,
        c.bytes_out,
    ]
}

/// Run the scripted workload against a server and return every raw
/// response payload plus the deterministic-counter delta it caused.
fn equivalence_script(addr: SocketAddr) -> (Vec<Vec<u8>>, [u64; 8]) {
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut poll = FilterClient::connect(addr).expect("poll client");

    // Adversarial prologue: a peer that announces a frame, sends a
    // fragment, and vanishes. Detection is asynchronous, so it runs
    // before the baseline snapshot and is asserted as an absolute.
    {
        let mut rude = TcpStream::connect(addr).unwrap();
        rude.write_all(&512u32.to_le_bytes()).unwrap();
        rude.write_all(&[0x5a; 8]).unwrap();
    }
    let s = wait_for_stats(&mut poll, |s| s.counters.disconnects_mid_frame >= 1);
    assert_eq!(s.counters.disconnects_mid_frame, 1, "exactly one rude peer");
    let base = deterministic_counters(&poll.stats().unwrap().counters);

    let keys = unique_keys(0xe2_4001, 4_000);
    let probes = disjoint_keys(0xe2_4002, 2_000, &keys);
    let all: Vec<u64> = keys.iter().chain(&probes).copied().collect();

    let mut c = RawConn::connect(addr);

    // CREATE one instance of every backend family.
    for (name, backend, bits) in [
        ("eq-b", Backend::AtomicBloom, 0),
        ("eq-c", Backend::ShardedCuckoo, 2),
        ("eq-q", Backend::ShardedCqf, 2),
        ("eq-r", Backend::RegisterBloom, 2),
        ("eq-t", Backend::TwoChoiceBloom, 2),
        ("eq-l", Backend::Compacting, 0),
    ] {
        let p = c.call(&create_req(name, backend, bits));
        out.push(p);
    }

    // Pipelined burst: 24 INSERT frames written back-to-back before
    // any response is read. The threaded transport serves them
    // sequentially; the evented transport drains them as pipelined
    // work. In-order responses are part of the wire contract.
    let mut burst = Vec::new();
    for name in ["eq-b", "eq-c", "eq-q", "eq-r", "eq-t", "eq-l"] {
        for chunk in keys.chunks(1_000) {
            let payload = Request::Insert {
                name: name.to_string(),
                keys: chunk.to_vec(),
            }
            .encode();
            burst.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            burst.extend_from_slice(&payload);
        }
    }
    c.stream.write_all(&burst).unwrap();
    for _ in 0..24 {
        out.push(c.recv());
    }

    // Batched reads across every backend. The compacting backend is
    // probed with inserted keys only: its negative-probe answers
    // depend on background compaction timing and are the one part of
    // the state space that is deliberately not bit-stable.
    for name in ["eq-b", "eq-c", "eq-q", "eq-r", "eq-t"] {
        out.push(c.call(&Request::Contains {
            name: name.to_string(),
            keys: all.clone(),
        }));
    }
    out.push(c.call(&Request::Contains {
        name: "eq-l".to_string(),
        keys: keys.clone(),
    }));
    // MULTI_CONTAINS over inserted keys: every key was inserted into
    // all six filters, so the per-key name lists are exact and
    // bit-stable on both transports. Negative probes are excluded —
    // a compacting-backend false positive would depend on background
    // compaction timing.
    out.push(c.call(&Request::MultiContains {
        keys: keys[..500].to_vec(),
    }));
    out.push(c.call(&Request::Count {
        name: "eq-q".to_string(),
        keys: keys[..500].to_vec(),
    }));
    out.push(c.call(&Request::Delete {
        name: "eq-c".to_string(),
        keys: keys[..500].to_vec(),
    }));

    // Error paths: every code the dispatcher can produce.
    out.push(c.call(&Request::Insert {
        name: "ghost".to_string(),
        keys: vec![1],
    }));
    out.push(c.call(&create_req("eq-b", Backend::AtomicBloom, 0)));
    out.push(c.call(&Request::Count {
        name: "eq-b".to_string(),
        keys: vec![1],
    }));
    out.push(c.call(&create_req("bad name", Backend::AtomicBloom, 0)));
    out.push(c.call(&blob_req(
        "eq-bad",
        Backend::ShardedCuckoo,
        vec![0xde, 0xad],
    )));
    out.push(c.call(&blob_req("eq-bad2", Backend::AtomicBloom, vec![1, 2, 3])));

    // Snapshot round-trip over the wire: SNAPSHOT → blob-CREATE →
    // identical answers under the new name.
    let blob_b = c.call(&Request::Snapshot {
        name: "eq-b".to_string(),
    });
    let blob_c = c.call(&Request::Snapshot {
        name: "eq-c".to_string(),
    });
    let unpack = |payload: &[u8], want: Backend| match Response::decode(payload).unwrap() {
        Response::Blob { backend, bytes } => {
            assert_eq!(backend, want);
            bytes
        }
        other => panic!("expected blob, got {other:?}"),
    };
    let (bloom_bytes, cuckoo_bytes) = (
        unpack(&blob_b, Backend::AtomicBloom),
        unpack(&blob_c, Backend::ShardedCuckoo),
    );
    out.push(blob_b);
    out.push(blob_c);
    out.push(c.call(&blob_req("eq-b2", Backend::AtomicBloom, bloom_bytes)));
    out.push(c.call(&blob_req("eq-c2", Backend::ShardedCuckoo, cuckoo_bytes)));
    for name in ["eq-b2", "eq-c2"] {
        out.push(c.call(&Request::Contains {
            name: name.to_string(),
            keys: all.clone(),
        }));
    }
    out.push(c.call(&Request::Forget {
        name: "eq-c".to_string(),
    }));
    let gone = c.call(&Request::Contains {
        name: "eq-c".to_string(),
        keys: vec![1],
    });
    match Response::decode(&gone).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchFilter),
        other => panic!("expected NoSuchFilter, got {other:?}"),
    }
    out.push(gone);

    // A well-framed garbage payload: BadFrame answer, framing stays
    // in sync, connection survives.
    write_frame(&mut c.stream, &[0u8; 16]).unwrap();
    out.push(c.recv());
    out.push(c.call(&Request::Contains {
        name: "eq-b".to_string(),
        keys: keys[..10].to_vec(),
    }));
    drop(c);

    // An absurd length prefix on its own connection: answered with
    // BadFrame, counted, then closed. Reading the answer makes the
    // counting synchronous.
    let mut rude = RawConn::connect(addr);
    rude.stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    out.push(rude.recv());
    drop(rude);

    let fin = poll.stats().unwrap().counters;
    assert_eq!(fin.disconnects_mid_frame, 1);
    let finals = deterministic_counters(&fin);
    let mut delta = [0u64; 8];
    for i in 0..8 {
        delta[i] = finals[i] - base[i];
    }
    (out, delta)
}

#[test]
fn threaded_and_evented_transports_are_bit_identical() {
    // Four workers: the script holds a poll client and a scripted
    // connection open while transient adversarial peers connect.
    let config = || ServerConfig {
        workers: 4,
        read_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    };

    let threaded = FilterServer::bind("127.0.0.1:0", config()).expect("bind threaded");
    let (t_resp, t_delta) = equivalence_script(threaded.local_addr());
    threaded.shutdown();

    let evented = EventedFilterServer::bind("127.0.0.1:0", config()).expect("bind evented");
    let (e_resp, e_delta) = equivalence_script(evented.local_addr());
    evented.shutdown();

    assert_eq!(t_resp.len(), e_resp.len(), "response count diverged");
    for (i, (t, e)) in t_resp.iter().zip(&e_resp).enumerate() {
        assert_eq!(t, e, "response #{i} diverged between transports");
    }
    assert_eq!(
        t_delta, e_delta,
        "deterministic STATS deltas diverged \
         [frames, responses, proto_errs, err_responses, keys, batched, bytes_in, bytes_out]"
    );
}

// ===============================================================
// Slow-loris hardening: a peer dribbling a valid frame one byte at a
// time across many read timeouts is served; a peer that stalls past
// the idle deadline is evicted.
// ===============================================================

#[test]
fn byte_dribbled_frame_survives_read_timeouts_on_both_transports() {
    let config = || ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(5),
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    };
    let threaded = FilterServer::bind("127.0.0.1:0", config()).expect("bind threaded");
    let evented = EventedFilterServer::bind("127.0.0.1:0", config()).expect("bind evented");

    for addr in [threaded.local_addr(), evented.local_addr()] {
        let mut c = RawConn::connect(addr);
        let payload = Request::Stats.encode();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        // Each byte lands several read-timeout periods after the
        // last: the server sees WouldBlock over and over mid-frame
        // and must keep waiting, because bytes ARE arriving before
        // the idle deadline.
        for &b in &wire {
            c.stream.write_all(&[b]).unwrap();
            std::thread::sleep(Duration::from_millis(15));
        }
        match Response::decode(&c.recv()).unwrap() {
            Response::Stats(s) => assert!(s.counters.frames_received >= 1),
            other => panic!("expected stats answer to dribbled frame, got {other:?}"),
        }
    }
    threaded.shutdown();
    evented.shutdown();
}

#[test]
fn idle_deadline_evicts_stalled_connections_on_both_transports() {
    let config = || ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(5),
        idle_timeout: Some(Duration::from_millis(60)),
        ..ServerConfig::default()
    };
    let threaded = FilterServer::bind("127.0.0.1:0", config()).expect("bind threaded");
    let evented = EventedFilterServer::bind("127.0.0.1:0", config()).expect("bind evented");

    for addr in [threaded.local_addr(), evented.local_addr()] {
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(&[0x01, 0x02]).unwrap(); // partial prefix, then silence
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut byte = [0u8; 1];
        // The server must close us: EOF or reset, never a response
        // (we never completed a frame) and never a 5s hang.
        let t0 = Instant::now();
        match stalled.read(&mut byte) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("server answered {n} bytes to an incomplete frame"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "idle eviction did not happen before the read timeout"
        );
        // The server is still accepting and serving after eviction.
        let mut fresh = FilterClient::connect(addr).unwrap();
        assert!(fresh.stats().is_ok());
    }
    threaded.shutdown();
    evented.shutdown();
}

// ===============================================================
// Cluster mode: consistent-hash routing across live servers (mixed
// transports), node add with shard migration, node removal, and
// replication — the filter keeps answering correctly throughout.
// ===============================================================

#[test]
fn cluster_routes_migrates_and_replicates_across_live_servers() {
    let config = || ServerConfig {
        workers: 4,
        read_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    // Mixed transports on purpose: the cluster client must not be
    // able to tell a threaded member from an evented one.
    let node_a = FilterServer::bind("127.0.0.1:0", config()).expect("bind a");
    let node_b = EventedFilterServer::bind("127.0.0.1:0", config()).expect("bind b");
    let (addr_a, addr_b) = (node_a.local_addr(), node_b.local_addr());

    let mut cluster = ClusterClient::new(vec![addr_a, addr_b]).expect("cluster");

    // 24 filters across three backend families, each with its own
    // keyset. Ephemeral ports randomize the ring layout per run, so
    // assertions are about totals and invariants, not placements.
    let backends = [
        Backend::AtomicBloom,
        Backend::ShardedCuckoo,
        Backend::ShardedCqf,
    ];
    let mut keysets: Vec<(String, Vec<u64>)> = Vec::new();
    for i in 0..24 {
        let name = format!("shard-{i:02}");
        let keys = unique_keys(9_000 + i, 300);
        cluster
            .create(&name, backends[i as usize % 3], 5_000, 0.01, 1, 7 + i)
            .unwrap();
        cluster.insert(&name, &keys).unwrap();
        keysets.push((name, keys));
    }
    let verify_all = |cluster: &mut ClusterClient, keysets: &[(String, Vec<u64>)]| {
        for (name, keys) in keysets {
            assert!(
                cluster.contains(name, keys).unwrap().iter().all(|&b| b),
                "{name} lost keys"
            );
        }
    };
    verify_all(&mut cluster, &keysets);
    let all_stats = cluster.stats_all().unwrap();
    let total: usize = all_stats.values().map(|s| s.filters.len()).sum();
    assert_eq!(
        total,
        24,
        "every filter lives on exactly one node; layout: {:?}",
        all_stats
            .iter()
            .map(|(a, s)| (
                *a,
                s.filters.iter().map(|f| f.name.clone()).collect::<Vec<_>>()
            ))
            .collect::<Vec<_>>()
    );

    // Grow the cluster: only the arcs now owned by the new node move,
    // every migration lands on it, and nothing is lost.
    let node_c = EventedFilterServer::bind("127.0.0.1:0", config()).expect("bind c");
    let addr_c = node_c.local_addr();
    let report = cluster.add_node(addr_c).expect("add node");
    assert_eq!(report.moved.len() + report.retained, 24);
    for m in &report.moved {
        assert_eq!(m.to, addr_c, "adds may only move filters TO the new node");
        assert_eq!(
            cluster.owner_addr(&m.name),
            addr_c,
            "moved filter must be owned by the new node"
        );
    }
    verify_all(&mut cluster, &keysets);
    // The migrated filters genuinely live on the new node (and were
    // forgotten at the source): the node's own registry lists them.
    let mut direct_c = FilterClient::connect(addr_c).unwrap();
    let on_c = direct_c.stats().unwrap();
    for m in &report.moved {
        assert!(
            on_c.filters.iter().any(|f| f.name == m.name),
            "{} not found on the new node",
            m.name
        );
    }
    let total: usize = cluster
        .stats_all()
        .unwrap()
        .values()
        .map(|s| s.filters.len())
        .sum();
    assert_eq!(total, 24, "migration must move, not copy");

    // Shrink the cluster: everything the departing node held is
    // re-homed, and the cluster still serves every filter.
    let report = cluster.remove_node(addr_a).expect("remove node");
    for m in &report.moved {
        assert_eq!(m.from, addr_a, "removes only move filters OFF the leaver");
    }
    assert_eq!(cluster.node_addrs(), vec![addr_b, addr_c]);
    verify_all(&mut cluster, &keysets);

    // Replication: a same-name copy on the owner's successor answers
    // reads on its own.
    let (name, keys) = &keysets[0];
    let placed = cluster.replicate(name, 1).expect("replicate");
    assert_eq!(placed.len(), 1);
    assert_ne!(placed[0], cluster.owner_addr(name));
    let mut replica = FilterClient::connect(placed[0]).unwrap();
    assert!(replica.contains(name, keys).unwrap().iter().all(|&b| b));

    drop((cluster, direct_c, replica));
    node_a.shutdown();
    node_b.shutdown();
    node_c.shutdown();
}

// ===============================================================
// Distributed tracing: one traced probe at the cluster client must
// assemble into a single cross-process trace spanning client
// routing, both transports' servers, engine dispatch, the Bloofi
// descent — and, when the traced insert seals a memtable, a span
// linked to the background compaction that drains it.
// ===============================================================

/// Validate Chrome `trace_event` JSON: an object with a
/// `traceEvents` array of well-formed events, every complete event
/// tagged with our trace id, and (when a linked span exists) a
/// flow-arrow `s`/`f` pair.
fn check_chrome_json(json_text: &str, trace_id: u64, expect_flow: bool) {
    use beyond_bloom::telemetry::trace::json::{self, Json};
    let doc = json::parse(json_text)
        .unwrap_or_else(|e| panic!("chrome JSON failed to parse: {e}\n---\n{json_text}"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::items)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "no trace events rendered");
    let (mut complete, mut starts, mut finishes) = (0, 0, 0);
    for ev in events {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            other => panic!("event missing ph: {other:?}"),
        };
        for field in ["name", "ts", "pid", "tid"] {
            assert!(ev.get(field).is_some(), "event missing {field}");
        }
        match ph {
            "X" => {
                complete += 1;
                assert!(ev.get("dur").is_some(), "complete event missing dur");
                let args = ev.get("args").expect("complete event args");
                match args.get("trace_id") {
                    Some(Json::Str(s)) => {
                        assert_eq!(s, &format!("{trace_id:016x}"), "foreign trace id")
                    }
                    other => panic!("args.trace_id missing: {other:?}"),
                }
            }
            "s" => starts += 1,
            "f" => finishes += 1,
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(complete >= 6, "only {complete} complete events");
    if expect_flow {
        assert!(
            starts >= 1 && finishes >= 1,
            "linked span must render a flow pair (s={starts}, f={finishes})"
        );
    }
}

#[test]
fn trace_route_assembles_one_cross_process_trace() {
    if beyond_bloom::telemetry::compiled_out() {
        return; // tracing compiles out with telemetry-off
    }
    let config = || ServerConfig {
        workers: 2,
        read_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    // Mixed transports on purpose: the assembled trace must not care
    // whether a server span came from a thread or an event loop.
    let node_a = FilterServer::bind("127.0.0.1:0", config()).expect("bind threaded");
    let node_b = EventedFilterServer::bind("127.0.0.1:0", config()).expect("bind evented");
    let (addr_a, addr_b) = (node_a.local_addr(), node_b.local_addr());
    let mut cluster = ClusterClient::new(vec![addr_a, addr_b]).expect("cluster");

    // A few plain filters so the Bloofi descent has a tree to walk,
    // plus a compacting filter primed one key short of a seal: its
    // memtable holds 1/16 of capacity floored at 1024 keys, so 1023
    // inserts leave the traced insert to tip it over.
    for i in 0..6u64 {
        let name = format!("tr-{i}");
        cluster
            .create(&name, Backend::AtomicBloom, 5_000, 0.01, 0, 40 + i)
            .unwrap();
        cluster.insert(&name, &unique_keys(7_700 + i, 200)).unwrap();
    }
    cluster
        .create("tr-lsm", Backend::Compacting, 2_000, 0.01, 0, 99)
        .unwrap();
    cluster
        .insert("tr-lsm", &unique_keys(7_790, 1_023))
        .unwrap();

    // ---- Phase 1: a plain traced probe assembles end to end. ----
    let trace = cluster.trace_route(0xfee1_600d).expect("trace_route");
    assert_ne!(trace.trace_id, 0);
    assert!(
        trace.spans.len() >= 6,
        "expected >= 6 spans, got {}: {:?}",
        trace.spans.len(),
        trace
            .spans
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
    );
    assert!(trace.spans.iter().all(|s| s.trace_id == trace.trace_id));
    // Exactly one root (the forced cluster-client span).
    let roots: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.parent_id == 0 && s.link_id == 0)
        .collect();
    assert_eq!(roots.len(), 1, "one root span, got {roots:?}");
    assert_eq!(roots[0].name, "cluster:trace_route");
    // Every edge resolves inside the trace: parents for the in-band
    // tree, links for background handoffs.
    let ids: std::collections::HashSet<u64> = trace.spans.iter().map(|s| s.span_id).collect();
    for s in &trace.spans {
        if s.parent_id != 0 {
            assert!(ids.contains(&s.parent_id), "dangling parent on {s:?}");
        }
        if s.link_id != 0 {
            assert!(ids.contains(&s.link_id), "dangling link on {s:?}");
        }
    }
    let count = |name: &str| trace.spans.iter().filter(|s| s.name == name).count();
    // One server-side request span per node, each parented onto its
    // own client-side rpc span (the cross-process edge the wire
    // context exists for).
    assert_eq!(count("server:request"), 2);
    let rpc_ids: std::collections::HashSet<u64> = trace
        .spans
        .iter()
        .filter(|s| s.name.starts_with("rpc:"))
        .map(|s| s.span_id)
        .collect();
    assert_eq!(rpc_ids.len(), 2, "one rpc span per node");
    for s in trace.spans.iter().filter(|s| s.name == "server:request") {
        assert!(
            rpc_ids.contains(&s.parent_id),
            "server span must parent onto a client rpc span: {s:?}"
        );
        assert_eq!(roots[0].span_id, {
            let rpc = trace
                .spans
                .iter()
                .find(|r| r.span_id == s.parent_id)
                .unwrap();
            rpc.parent_id
        });
    }
    // Engine and index layers reported under each server request.
    assert_eq!(count("engine:multi_contains"), 2);
    assert!(count("bloofi:descent") >= 2, "descent span per node");
    let descent = trace
        .spans
        .iter()
        .find(|s| s.name == "bloofi:descent" && s.b > 0)
        .expect("a non-trivial descent (probes counted)");
    assert!(descent.a >= 1, "descent records tree depth");

    // ---- Phase 2: a traced insert that seals links the background
    // compaction into the same trace. ----
    let pending = cluster
        .trace_route_begin(0x5ea1_ab1e, Some("tr-lsm"))
        .expect("traced insert + probe");
    assert_ne!(pending.trace_id, 0);
    // All servers run in-process, so the shared trace store lets the
    // test wait (non-destructively) for the compactor's linked span
    // before the destructive collection drain.
    let store = beyond_bloom::telemetry::trace::store();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !store
        .peek_spans(pending.trace_id)
        .iter()
        .any(|s| s.name == "compacting:compact")
    {
        assert!(
            Instant::now() < deadline,
            "compaction span never linked; spans so far: {:?}",
            store.peek_spans(pending.trace_id)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let trace2 = cluster.trace_collect(pending).expect("collect");
    assert_ne!(
        trace2.trace_id, trace.trace_id,
        "fresh trace id per request"
    );
    let ids2: std::collections::HashSet<u64> = trace2.spans.iter().map(|s| s.span_id).collect();
    let compact = trace2
        .spans
        .iter()
        .find(|s| s.name == "compacting:compact")
        .expect("linked compaction span");
    assert_eq!(compact.parent_id, 0, "background span links, not parents");
    assert!(
        ids2.contains(&compact.link_id),
        "compaction must link back to the sealing request's span"
    );
    assert!(compact.b >= 1, "compaction annotates resulting tier count");
    assert!(
        trace2.spans.iter().any(|s| s.name == "engine:insert"),
        "the traced INSERT recorded its engine span"
    );

    // ---- Phase 3: the merged trace renders as Chrome trace_event
    // JSON (loadable in about:tracing / Perfetto). ----
    let json_text =
        beyond_bloom::telemetry::trace::chrome_trace_json(std::slice::from_ref(&trace2));
    check_chrome_json(&json_text, trace2.trace_id, true);

    // And the wire surface serves the same format: a forced traced
    // call against one node, then OP_TRACES with json=true.
    let mut direct = FilterClient::connect(addr_a).unwrap();
    let ctx = beyond_bloom::telemetry::trace::TraceContext {
        trace_id: 0x00c0_ffee_0a11_d00d,
        span_id: 0x1,
        flags: beyond_bloom::telemetry::trace::FLAG_FORCED,
    };
    direct
        .call_traced(&Request::MultiContains { keys: vec![5] }, Some(ctx))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while store.peek_spans(ctx.trace_id).is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let wire_json = direct.traces_json().unwrap();
    let doc = beyond_bloom::telemetry::trace::json::parse(&wire_json).expect("wire JSON parses");
    assert!(
        doc.get("traceEvents")
            .and_then(beyond_bloom::telemetry::trace::json::Json::items)
            .is_some_and(|evs| !evs.is_empty()),
        "OP_TRACES json dump must carry the forced trace:\n{wire_json}"
    );

    drop((cluster, direct));
    node_a.shutdown();
    node_b.shutdown();
}
