//! Property-based tests: core data structures and filters checked
//! against reference models under arbitrary operation sequences.

use beyond_bloom::core::{
    BitVec, CountingFilter, DynamicFilter, EliasFano, Filter, InsertFilter, Maplet, PackedArray,
    RangeFilter,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BitVec::set_bits/get_bits round-trips at arbitrary offsets and
    /// widths, without disturbing neighbours.
    #[test]
    fn bitvec_field_roundtrip(
        pos in 0usize..500,
        width in 1u32..=64,
        value: u64,
        canary in 0u64..2,
    ) {
        let mut bv = BitVec::new(600);
        // Plant canaries on both sides.
        if pos > 0 && canary == 1 {
            bv.set(pos - 1);
        }
        let end = pos + width as usize;
        if end < 599 && canary == 1 {
            bv.set(end);
        }
        bv.set_bits(pos, width, value);
        prop_assert_eq!(bv.get_bits(pos, width), value & beyond_bloom::core::rem_mask(width));
        if pos > 0 {
            prop_assert_eq!(bv.get(pos - 1), canary == 1);
        }
        if end < 599 {
            prop_assert_eq!(bv.get(end), canary == 1);
        }
    }

    /// PackedArray behaves like a Vec<u64> masked to its width.
    #[test]
    fn packed_array_matches_vec(
        width in 1u32..=63,
        ops in prop::collection::vec((0usize..128, any::<u64>()), 1..200),
    ) {
        let mut pa = PackedArray::new(128, width);
        let mut model = vec![0u64; 128];
        let mask = beyond_bloom::core::rem_mask(width);
        for (i, v) in ops {
            pa.set(i, v);
            model[i] = v & mask;
        }
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(pa.get(i), want);
        }
    }

    /// Elias–Fano reproduces any sorted sequence and its successor
    /// queries.
    #[test]
    fn elias_fano_matches_sorted_vec(
        mut values in prop::collection::vec(0u64..1_000_000, 0..300),
        probes in prop::collection::vec(0u64..1_100_000, 0..50),
    ) {
        values.sort_unstable();
        let universe = values.last().copied().unwrap_or(0);
        let ef = EliasFano::new(&values, universe);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(ef.get(i), v);
        }
        for p in probes {
            prop_assert_eq!(ef.successor_index(p), values.partition_point(|&v| v < p));
        }
    }

    /// The quotient filter over a multiset model: inserts/removes in
    /// arbitrary interleaving never produce a false negative.
    #[test]
    fn quotient_filter_multiset_model(
        ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..400),
    ) {
        let mut f = beyond_bloom::quotient::QuotientFilter::new(10, 12);
        let mut model: HashMap<u64, usize> = HashMap::new();
        for (insert, key) in ops {
            if insert {
                if f.insert(key).is_ok() {
                    *model.entry(key).or_insert(0) += 1;
                }
            } else {
                let removed = f.remove(key).unwrap();
                let m = model.get(&key).copied().unwrap_or(0);
                // With 12-bit remainders over 64 keys collisions are
                // negligible: removal succeeds iff the model has it.
                prop_assert_eq!(removed, m > 0);
                if removed {
                    *model.get_mut(&key).unwrap() -= 1;
                }
            }
        }
        for (&k, &c) in &model {
            if c > 0 {
                prop_assert!(f.contains(k), "false negative for {}", k);
            }
        }
        prop_assert_eq!(f.len(), model.values().sum::<usize>());
    }

    /// CQF counts dominate the true multiset counts.
    #[test]
    fn cqf_counts_dominate_model(
        ops in prop::collection::vec((0u64..32, 1u64..20), 1..200),
    ) {
        let mut f = beyond_bloom::quotient::CountingQuotientFilter::new(10, 10);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (key, c) in ops {
            f.insert_count(key, c).unwrap();
            *model.entry(key).or_insert(0) += c;
        }
        for (&k, &c) in &model {
            prop_assert!(f.count(k) >= c);
        }
        prop_assert_eq!(f.total_count(), model.values().sum::<u64>());
    }

    /// Cuckoo filter delete-reinsert sequences keep live keys visible.
    #[test]
    fn cuckoo_delete_reinsert(
        keys in prop::collection::btree_set(any::<u64>(), 1..200),
        drop_every in 2usize..5,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut f = beyond_bloom::cuckoo::CuckooFilter::new(512, 14);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let mut live: BTreeSet<u64> = keys.iter().copied().collect();
        for &k in keys.iter().step_by(drop_every) {
            prop_assert!(f.remove(k).unwrap());
            live.remove(&k);
        }
        for &k in &live {
            prop_assert!(f.contains(k));
        }
    }

    /// Maplet: the true value is always among the returned candidates.
    #[test]
    fn quotient_maplet_returns_truth(
        pairs in prop::collection::hash_map(any::<u64>(), 0u64..0xffff, 1..150),
    ) {
        let mut m = beyond_bloom::maplet::QuotientMaplet::new(9, 12, 16);
        for (&k, &v) in &pairs {
            m.insert(k, v).unwrap();
        }
        let mut out = Vec::new();
        for (&k, &v) in &pairs {
            out.clear();
            m.get(k, &mut out);
            prop_assert!(out.contains(&v));
        }
    }

    /// Range filters never report a truly non-empty range as empty.
    #[test]
    fn range_filters_never_false_negative(
        keys in prop::collection::btree_set(0u64..u64::MAX - 2, 2..100),
        widths in prop::collection::vec(0u64..10_000, 1..30),
    ) {
        let keys: Vec<u64> = keys.iter().copied().collect();
        let surf = beyond_bloom::rangefilter::Surf::build(&keys, 8);
        let grafite = beyond_bloom::rangefilter::Grafite::build(&keys, 14, 0.01);
        let snarf = beyond_bloom::rangefilter::Snarf::build(&keys, 10.0);
        for (i, w) in widths.iter().enumerate() {
            let k = keys[i % keys.len()];
            let lo = k.saturating_sub(w / 2);
            let hi = k.saturating_add(w / 2);
            prop_assert!(surf.may_contain_range(lo, hi), "surf FN");
            prop_assert!(grafite.may_contain_range(lo, hi), "grafite FN");
            prop_assert!(snarf.may_contain_range(lo, hi), "snarf FN");
        }
    }

    /// InfiniFilter expansion never loses a key.
    #[test]
    fn infini_expansion_preserves_members(
        keys in prop::collection::btree_set(any::<u64>(), 1..500),
    ) {
        let mut f = beyond_bloom::infini::InfiniFilter::new(4, 10);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Counting Bloom: counts dominate and deletes restore the model.
    #[test]
    fn cbf_counts_dominate(
        ops in prop::collection::vec((0u64..64, 1u64..5), 1..100),
    ) {
        let mut f = beyond_bloom::bloom::CountingBloomFilter::new(1000, 0.001, 8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (k, c) in ops {
            f.insert_count(k, c).unwrap();
            *model.entry(k).or_insert(0) += c;
        }
        for (&k, &c) in &model {
            prop_assert!(f.count(k) >= c);
        }
    }

    /// Taffy cuckoo filter: no false negatives across any expansion
    /// sequence the inserts trigger.
    #[test]
    fn taffy_never_loses_keys(
        keys in prop::collection::btree_set(any::<u64>(), 1..600),
    ) {
        let mut f = beyond_bloom::infini::TaffyCuckooFilter::new(4, 14);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Vector quotient filter against a multiset model (insert-only).
    #[test]
    fn vqf_multiset_no_false_negatives(
        keys in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        let mut f = beyond_bloom::quotient::VectorQuotientFilter::new(512);
        for &k in &keys {
            f.insert(k).unwrap();
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
        prop_assert_eq!(f.len(), keys.len());
    }

    /// ARF: marking truly-empty ranges never hides real keys.
    #[test]
    fn arf_never_false_negative(
        keys in prop::collection::btree_set(0u64..u64::MAX - 1, 1..100),
        ranges in prop::collection::vec((any::<u64>(), 0u64..1 << 20), 0..40),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut arf = beyond_bloom::rangefilter::Arf::new(20_000);
        for (lo, w) in ranges {
            let hi = lo.saturating_add(w);
            let i = keys.partition_point(|&k| k < lo);
            let empty = !(i < keys.len() && keys[i] <= hi);
            if empty {
                arf.mark_empty(lo, hi);
            }
        }
        use beyond_bloom::core::RangeFilter;
        for &k in &keys {
            prop_assert!(arf.may_contain(k), "ARF hid key {:#x}", k);
        }
    }

    /// Cascade filter: flushes and merges never lose fingerprints.
    #[test]
    fn cascade_never_loses_keys(
        keys in prop::collection::btree_set(any::<u64>(), 1..800),
        buffer in 16usize..64,
    ) {
        let mut f = beyond_bloom::lsm::CascadeFilter::new(buffer, 40);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// AtomicBitVec behaves exactly like BitVec under any sequence of
    /// single-threaded set operations (the concurrent semantics are
    /// this serial behaviour plus commutativity of fetch_or).
    #[test]
    fn atomic_bitvec_matches_bitvec(
        len in 1usize..700,
        ops in prop::collection::vec(0usize..700, 0..300),
    ) {
        use beyond_bloom::core::AtomicBitVec;
        let atomic = AtomicBitVec::new(len);
        let mut model = BitVec::new(len);
        for i in ops {
            let i = i % len;
            let was_set = model.get(i);
            model.set(i);
            // test_and_set reports the prior value exactly.
            prop_assert_eq!(atomic.test_and_set(i), was_set);
        }
        for i in 0..len {
            prop_assert_eq!(atomic.get(i), model.get(i));
        }
        prop_assert_eq!(atomic.count_ones(), model.count_ones());
        // Snapshot and round-trip conversions agree word-for-word.
        let snap = atomic.snapshot();
        for i in 0..len {
            prop_assert_eq!(snap.get(i), model.get(i));
        }
        let back = AtomicBitVec::from(&model);
        prop_assert_eq!(back.count_ones(), model.count_ones());
    }

    /// A one-shard Sharded<F> is observationally identical to its
    /// inner filter: same membership answers (including false
    /// positives), same len, under any op sequence.
    #[test]
    fn sharded_single_shard_matches_inner(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        probes in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        use beyond_bloom::concurrent::Sharded;
        let sharded: Sharded<beyond_bloom::bloom::BloomFilter> =
            Sharded::new(0, |_| beyond_bloom::bloom::BloomFilter::with_seed(512, 0.02, 99));
        let mut inner = beyond_bloom::bloom::BloomFilter::with_seed(512, 0.02, 99);
        for &k in &keys {
            sharded.insert(k).unwrap();
            inner.insert(k).unwrap();
        }
        prop_assert_eq!(sharded.len(), inner.len());
        for &p in keys.iter().chain(&probes) {
            prop_assert_eq!(sharded.contains(p), inner.contains(p));
        }
    }

    /// Sharded<CQF> applied serially matches a multiset model, and
    /// the batch API matches pointwise application key-for-key.
    #[test]
    fn sharded_cqf_serial_matches_model(
        ops in prop::collection::vec((0u64..128, 1u64..6), 1..200),
        probes in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        use beyond_bloom::concurrent::Sharded;
        use beyond_bloom::quotient::CountingQuotientFilter;
        let build = || -> Sharded<CountingQuotientFilter> {
            Sharded::new(2, |i| {
                let mut f = CountingQuotientFilter::with_seed(8, 10, 0x5eed ^ i as u64);
                f.set_auto_expand(true);
                f
            })
        };
        let pointwise = build();
        let batched = build();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut flat = Vec::new();
        for &(k, c) in &ops {
            pointwise.insert_count(k, c).unwrap();
            *model.entry(k).or_insert(0) += c;
            for _ in 0..c {
                flat.push(k);
            }
        }
        batched.insert_batch(&flat).unwrap();
        for (&k, &c) in &model {
            prop_assert!(pointwise.count(k) >= c, "undercount for {}", k);
            prop_assert_eq!(pointwise.count(k), batched.count(k));
        }
        for &p in &probes {
            prop_assert_eq!(pointwise.contains(p), batched.contains(p));
        }
    }

    /// Every filter overriding the batched probe kernel answers
    /// `contains_many` exactly as pointwise `contains`, across the
    /// chunk-boundary batch sizes (0, 1, 31, 32, 33, 65) where
    /// remainder-chunk handling could go wrong.
    #[test]
    fn batched_kernels_match_pointwise(
        keys in prop::collection::btree_set(any::<u64>(), 1..300),
        extra in prop::collection::vec(any::<u64>(), 65..66),
        n_idx in 0usize..BATCH_SIZES.len(),
    ) {
        let n = BATCH_SIZES[n_idx];
        let keys: Vec<u64> = keys.into_iter().collect();
        // Probe a mix of members and arbitrary keys, truncated to a
        // chunk-boundary length (members first so small batches still
        // exercise the positive path).
        let mut probes: Vec<u64> = keys.iter().copied().chain(extra).collect();
        probes.truncate(n);

        let cap = keys.len().max(8);
        let mut bloom = beyond_bloom::bloom::BloomFilter::with_seed(cap, 0.02, 7);
        let mut blocked = beyond_bloom::bloom::BlockedBloomFilter::with_seed(cap, 0.02, 7);
        let mut register = beyond_bloom::bloom::RegisterBlockedBloomFilter::with_seed(cap, 0.02, 7);
        let mut two_choice =
            beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::with_seed(cap, 0.02, 7);
        let atomic = beyond_bloom::bloom::AtomicBlockedBloomFilter::with_seed(cap, 0.02, 7);
        let mut counting = beyond_bloom::bloom::CountingBloomFilter::with_seed(cap, 0.02, 4, 7);
        let mut spectral = beyond_bloom::bloom::SpectralBloomFilter::with_seed(cap, 0.02, 3, 7);
        // Small initial stage so the chain actually grows mid-test.
        let mut scalable =
            beyond_bloom::bloom::ScalableBloomFilter::with_params(32, 0.02, 2, 0.5, 7);
        let mut cuckoo = beyond_bloom::cuckoo::CuckooFilter::new(2 * cap, 12);
        let mut cqf = beyond_bloom::quotient::CountingQuotientFilter::for_capacity(cap, 0.01);
        cqf.set_auto_expand(true);
        for &k in &keys {
            bloom.insert(k).unwrap();
            blocked.insert(k).unwrap();
            register.insert(k).unwrap();
            two_choice.insert(k).unwrap();
            atomic.insert(k);
            counting.insert(k).unwrap();
            spectral.insert(k).unwrap();
            scalable.insert(k).unwrap();
            cuckoo.insert(k).unwrap();
            cqf.insert(k).unwrap();
        }
        let xor = beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap();
        use beyond_bloom::xorf::{BinaryFuseFilter, FuseArity};
        let fuse3 = BinaryFuseFilter::build(&keys, FuseArity::Three, 8).unwrap();
        let fuse4 = BinaryFuseFilter::build(&keys, FuseArity::Four, 8).unwrap();

        batched_matches_pointwise("bloom", &bloom, &probes);
        batched_matches_pointwise("blocked", &blocked, &probes);
        batched_matches_pointwise("register-blocked", &register, &probes);
        batched_matches_pointwise("two-choice", &two_choice, &probes);
        batched_matches_pointwise("atomic-blocked", &atomic, &probes);
        batched_matches_pointwise("counting", &counting, &probes);
        batched_matches_pointwise("spectral", &spectral, &probes);
        batched_matches_pointwise("scalable", &scalable, &probes);
        batched_matches_pointwise("cuckoo", &cuckoo, &probes);
        batched_matches_pointwise("cqf", &cqf, &probes);
        batched_matches_pointwise("xor", &xor, &probes);
        batched_matches_pointwise("fuse3", &fuse3, &probes);
        batched_matches_pointwise("fuse4", &fuse4, &probes);
    }

    /// Binary fuse construction: every inserted key probes true, for
    /// both arities and both common fingerprint widths, on arbitrary
    /// key sets.
    #[test]
    fn fuse_members_always_probe_true(
        keys in prop::collection::btree_set(any::<u64>(), 0..600),
        arity4 in any::<bool>(),
        wide_fp in any::<bool>(),
    ) {
        use beyond_bloom::xorf::{BinaryFuseFilter, FuseArity};
        let keys: Vec<u64> = keys.into_iter().collect();
        let arity = if arity4 { FuseArity::Four } else { FuseArity::Three };
        let fp_bits = if wide_fp { 16 } else { 8 };
        let f = BinaryFuseFilter::build(&keys, arity, fp_bits)
            .expect("construction within seed budget");
        prop_assert_eq!(f.len(), keys.len());
        for &k in &keys {
            prop_assert!(f.contains(k), "fuse {:?}/{} lost {:#x}", arity, fp_bits, k);
        }
    }

    /// `Sharded` batch membership restitches per-shard answers into
    /// input order: position `i` of the result always answers key `i`,
    /// including duplicated keys and empty shards.
    #[test]
    fn sharded_batch_preserves_input_order(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        probes in prop::collection::vec(any::<u64>(), 0..150),
        n_idx in 0usize..BATCH_SIZES.len(),
    ) {
        let n = BATCH_SIZES[n_idx];
        use beyond_bloom::concurrent::Sharded;
        let sharded: Sharded<beyond_bloom::bloom::BloomFilter> =
            Sharded::new(3, |i| beyond_bloom::bloom::BloomFilter::with_seed(512, 0.02, i as u64));
        for &k in &keys {
            sharded.insert(k).unwrap();
        }
        // Duplicates land in the same shard; interleave them anyway.
        let mut mixed: Vec<u64> = probes;
        mixed.extend(keys.iter().take(40));
        mixed.truncate(n);
        let got = sharded.contains_batch(&mixed);
        let want: Vec<bool> = mixed.iter().map(|&k| sharded.contains(k)).collect();
        prop_assert_eq!(got, want);
        batched_matches_pointwise("sharded-bloom", &sharded, &mixed);
    }

    /// The dyadic-hierarchy range filters agree with ground truth on
    /// non-empty ranges under arbitrary key sets.
    #[test]
    fn rosetta_rencoder_no_false_negatives(
        keys in prop::collection::btree_set(any::<u64>(), 1..150),
        widths in prop::collection::vec(0u64..1 << 16, 1..20),
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut rosetta = beyond_bloom::rangefilter::Rosetta::new(keys.len(), 0.05, 17);
        let mut rencoder = beyond_bloom::rangefilter::REncoder::new(keys.len(), 17, 72.0);
        for &k in &keys {
            rosetta.insert(k);
            rencoder.insert(k);
        }
        use beyond_bloom::core::RangeFilter;
        for (i, w) in widths.iter().enumerate() {
            let k = keys[i % keys.len()];
            let lo = k.saturating_sub(w / 2);
            let hi = k.saturating_add(w / 2);
            prop_assert!(rosetta.may_contain_range(lo, hi));
            prop_assert!(rencoder.may_contain_range(lo, hi));
        }
    }
}

/// Batch sizes straddling the probe-chunk boundary (`PROBE_CHUNK` is
/// 32): empty, singleton, one-under, exact, one-over, two chunks + 1.
const BATCH_SIZES: [usize; 6] = [0, 1, 31, 32, 33, 65];

/// Fuse construction succeeds within the seed budget at every awkward
/// size: degenerate (0/1/2) and the power-of-two ± 1 neighbourhood
/// where segment sizing is most brittle, for both arities.
#[test]
fn fuse_builds_at_degenerate_and_power_of_two_sizes() {
    use beyond_bloom::xorf::{BinaryFuseFilter, FuseArity};
    let mut sizes = vec![0usize, 1, 2];
    for log2 in [4u32, 8, 12, 16] {
        let p = 1usize << log2;
        sizes.extend([p - 1, p, p + 1]);
    }
    for &n in &sizes {
        let keys = beyond_bloom::workloads::unique_keys(0xf05e + n as u64, n);
        for arity in [FuseArity::Three, FuseArity::Four] {
            let f = BinaryFuseFilter::build(&keys, arity, 8)
                .unwrap_or_else(|e| panic!("n={n} {arity:?}: {e:?}"));
            assert_eq!(f.len(), n);
            assert!(keys.iter().all(|&k| f.contains(k)), "n={n} {arity:?}: FN");
        }
    }
}

/// Check that a filter's batched membership paths (`contains_many` and
/// the allocating `contains_batch`) agree bit-for-bit with pointwise
/// `contains` — false positives included.
fn batched_matches_pointwise<F: beyond_bloom::core::BatchedFilter>(
    label: &str,
    f: &F,
    probes: &[u64],
) {
    let mut got = vec![false; probes.len()];
    f.contains_many(probes, &mut got);
    let want: Vec<bool> = probes.iter().map(|&k| f.contains(k)).collect();
    assert_eq!(
        got, want,
        "{label}: contains_many diverges from scalar contains"
    );
    assert_eq!(
        f.contains_batch(probes),
        want,
        "{label}: contains_batch diverges from scalar contains"
    );
}

// ===============================================================
// Bloofi hierarchical index vs flat-scan oracle (over the wire)
// ===============================================================

proptest! {
    // Each case boots a real threaded server, so fewer cases than the
    // in-process suites above — the op interleavings inside a case do
    // the exploring.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random CREATE/INSERT/FORGET interleavings over mixed backends:
    /// MULTI_CONTAINS (Bloofi descent + leaf confirmation) must name
    /// every filter that truly holds a key (zero false negatives),
    /// and may name a filter only when that filter itself answers
    /// positive (false positives only where a leaf false-positives).
    /// The compacting backend is excluded: its false-positive answers
    /// shift with background compaction timing, which would race the
    /// oracle re-probe.
    #[test]
    fn bloofi_matches_flat_scan(
        ops in prop::collection::vec(
            (0u8..8, 0usize..5, prop::collection::vec(any::<u64>(), 1..24)),
            1..40,
        ),
        probes in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        use beyond_bloom::service::{Backend, FilterClient, FilterServer, ServerConfig};
        let backends = [
            Backend::AtomicBloom,
            Backend::ShardedCuckoo,
            Backend::ShardedCqf,
            Backend::RegisterBloom,
            Backend::TwoChoiceBloom,
        ];
        let server = FilterServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral");
        let mut c = FilterClient::connect(server.local_addr()).unwrap();
        let mut model: HashMap<String, BTreeSet<u64>> = HashMap::new();
        for (kind, slot, keys) in ops {
            let name = format!("pf-{slot}");
            let create = |c: &mut FilterClient| {
                c.create(&name, backends[slot], 4_096, 0.01, 2, slot as u64)
            };
            match kind {
                // FORGET when the filter exists (tree node removal).
                0 => {
                    if model.remove(&name).is_some() {
                        c.forget(&name).unwrap();
                    }
                }
                // Bare CREATE (empty tracked leaf).
                1 | 2 => {
                    if let std::collections::hash_map::Entry::Vacant(e) =
                        model.entry(name.clone())
                    {
                        create(&mut c).unwrap();
                        e.insert(BTreeSet::new());
                    }
                }
                // INSERT a batch, creating on demand so inserts
                // dominate the interleaving. Keys already present are
                // skipped: the model then matches the filter exactly,
                // and no backend sees pathological duplicate floods.
                _ => {
                    if !model.contains_key(&name) {
                        create(&mut c).unwrap();
                        model.insert(name.clone(), BTreeSet::new());
                    }
                    let inserted = model.get_mut(&name).unwrap();
                    let fresh: Vec<u64> =
                        keys.iter().copied().filter(|k| inserted.insert(*k)).collect();
                    if !fresh.is_empty() {
                        c.insert(&name, &fresh).unwrap();
                    }
                }
            }
        }
        // Probe every key ever inserted (the no-false-negative side)
        // plus random keys (the false-positive side).
        let mut all_probes: Vec<u64> = model.values().flatten().copied().collect();
        all_probes.extend(&probes);
        all_probes.sort_unstable();
        all_probes.dedup();
        let lists = c.multi_contains(&all_probes).unwrap();
        prop_assert_eq!(lists.len(), all_probes.len());
        // Flat-scan oracle: each surviving filter answers pointwise.
        let mut flat: HashMap<String, Vec<bool>> = HashMap::new();
        for name in model.keys() {
            flat.insert(name.clone(), c.contains(name, &all_probes).unwrap());
        }
        for (i, (&key, names)) in all_probes.iter().zip(&lists).enumerate() {
            for (name, inserted) in &model {
                if inserted.contains(&key) {
                    prop_assert!(
                        names.contains(name),
                        "false negative: {} holds {} but MULTI_CONTAINS omitted it",
                        name,
                        key
                    );
                }
            }
            for name in names {
                prop_assert_eq!(
                    flat.get(name).map(|b| b[i]),
                    Some(true),
                    "{} reported for {} without the filter confirming",
                    name,
                    key
                );
            }
        }
        drop(c);
        server.shutdown();
    }
}
