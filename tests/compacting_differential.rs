//! Differential tests for the compacting filter LSM: every sequence
//! of inserts, lookups, seals and compactions must agree with a
//! `HashSet` oracle on the no-false-negative side, and stay within
//! the configured false-positive budget after full compaction.
//!
//! The interleavings are driven by the in-tree `rand` shim with fixed
//! seeds, so a failure replays exactly.

use beyond_bloom::compacting::{CompactingConfig, CompactingFilter};
use beyond_bloom::core::{BatchedFilter, Filter};
use beyond_bloom::workloads::{disjoint_keys, unique_keys};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const EPS: f64 = 1.0 / 256.0;

fn cfg(front: usize, seed: u64) -> CompactingConfig {
    CompactingConfig::new(front, EPS, seed)
}

/// Randomized op-sequence differential run: the filter must contain
/// everything the oracle contains, at every step, across every tier
/// rotation the sequence provokes.
#[test]
fn random_interleavings_match_oracle() {
    for trial_seed in [1u64, 2, 3, 4] {
        let mut rng = StdRng::seed_from_u64(0xd1ff_0000 + trial_seed);
        // Small front so seals and compactions happen constantly.
        let f = CompactingFilter::new(cfg(128, trial_seed));
        let mut oracle: HashSet<u64> = HashSet::new();
        let mut inserted: Vec<u64> = Vec::new();
        for step in 0..6_000u32 {
            match rng.gen_range(0..100u32) {
                // Insert (dominant op; occasionally a duplicate).
                0..=59 => {
                    let key = if !inserted.is_empty() && rng.gen_bool(0.1) {
                        inserted[rng.gen_range(0..inserted.len())]
                    } else {
                        rng.gen::<u64>()
                    };
                    f.insert(key);
                    if oracle.insert(key) {
                        inserted.push(key);
                    }
                    assert!(f.contains(key), "seed {trial_seed} step {step}: lost {key}");
                }
                // Point lookup of a known-present key.
                60..=89 => {
                    if !inserted.is_empty() {
                        let key = inserted[rng.gen_range(0..inserted.len())];
                        assert!(
                            f.contains(key),
                            "seed {trial_seed} step {step}: false negative on {key}"
                        );
                    }
                }
                // Explicit seal + drain.
                90..=95 => f.flush(),
                // Full collapse.
                _ => f.compact_all(),
            }
        }
        // Everything the oracle holds must still probe true, batched
        // and pointwise.
        f.compact_all();
        let hits = f.contains_batch(&inserted);
        for (&k, &hit) in inserted.iter().zip(&hits) {
            assert!(hit, "seed {trial_seed}: batched false negative on {k}");
            assert!(f.contains(k), "seed {trial_seed}: false negative on {k}");
        }
        let st = f.stats();
        assert_eq!(st.tier_keys, oracle.len(), "seed {trial_seed}: dedup drift");
        assert_eq!(st.failed_compactions, 0);
    }
}

/// After a full compaction the structure is one fuse tier plus an
/// empty front, and its measured FPR must stay within 1.5× the
/// configured budget (fuse fingerprints are exactly ε = 2⁻⁸; the
/// empty front Bloom adds nothing).
#[test]
fn fpr_within_budget_after_full_compaction() {
    let f = CompactingFilter::new(cfg(2048, 99));
    let keys = unique_keys(9_001, 50_000);
    for &k in &keys {
        f.insert(k);
    }
    f.compact_all();
    assert!(keys.iter().all(|&k| f.contains(k)));
    let neg = disjoint_keys(9_002, 200_000, &keys);
    let fp = neg.iter().filter(|&&k| f.contains(k)).count();
    let fpr = fp as f64 / neg.len() as f64;
    assert!(fpr <= 1.5 * EPS, "fpr {fpr} > 1.5 x {EPS}");
    // And batched probing agrees with pointwise on the same mix.
    let mix: Vec<u64> = keys.iter().chain(neg.iter()).copied().take(8_192).collect();
    let batched = f.contains_batch(&mix);
    for (&k, &hit) in mix.iter().zip(&batched) {
        assert_eq!(hit, f.contains(k), "batched/pointwise drift on {k}");
    }
}

/// Concurrent differential: reader threads storm lookups of an
/// ever-growing published prefix while the writer inserts and a
/// background full compaction is repeatedly forced. Readers must
/// never observe a false negative for a key published before their
/// load of the prefix counter.
#[test]
fn readers_never_lose_keys_during_background_compaction() {
    let f = CompactingFilter::new(cfg(256, 7_777));
    let keys = unique_keys(9_003, 40_000);
    let published = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let false_neg = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Reader storm: each reader repeatedly samples random
        // published keys (pointwise and batched) during rotations.
        for r in 0..3u64 {
            let (f, keys, published, done, false_neg) = (&f, &keys, &published, &done, &false_neg);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xabcd + r);
                let mut batch = Vec::with_capacity(64);
                while !done.load(Ordering::Relaxed) {
                    let p = published.load(Ordering::Acquire);
                    if p == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    batch.clear();
                    for _ in 0..64 {
                        batch.push(keys[rng.gen_range(0..p)]);
                    }
                    let hits = f.contains_batch(&batch);
                    if hits.iter().any(|&h| !h) {
                        false_neg.store(true, Ordering::Relaxed);
                        return;
                    }
                    let k = keys[rng.gen_range(0..p)];
                    if !f.contains(k) {
                        false_neg.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
        // Compactor agitator: force full collapses while the writer
        // is mid-stream, so readers cross many epoch swaps.
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                f.compact_all();
                std::thread::yield_now();
            }
        });
        // Writer: publish keys one at a time (Release pairs with the
        // readers' Acquire: a published key is fully inserted).
        for (i, &k) in keys.iter().enumerate() {
            f.insert(k);
            published.store(i + 1, Ordering::Release);
            if false_neg.load(Ordering::Relaxed) {
                break;
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    assert!(
        !false_neg.load(Ordering::Relaxed),
        "a reader observed a false negative during background compaction"
    );
    // Post-mortem: the filter still holds every key, and rotations
    // actually happened (the test would be vacuous otherwise).
    f.compact_all();
    assert!(keys.iter().all(|&k| f.contains(k)));
    let st = f.stats();
    assert!(
        st.seals > 10,
        "too few seals ({}) to stress rotation",
        st.seals
    );
    assert!(
        st.compactions > 2,
        "too few compactions ({})",
        st.compactions
    );
    assert_eq!(st.failed_compactions, 0);
    assert_eq!(st.tier_keys, keys.len());
}

/// Snapshot round-trips taken mid-stream (tiers + sealed + front all
/// populated) must preserve the oracle relationship.
#[test]
fn snapshot_roundtrip_matches_oracle_mid_stream() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let f = CompactingFilter::new(cfg(512, 11));
    let mut oracle: Vec<u64> = Vec::new();
    for _ in 0..10_000 {
        let k = rng.gen::<u64>();
        f.insert(k);
        oracle.push(k);
    }
    // No flush: the snapshot must capture tiers, sealed fronts and
    // the live front alike.
    let restored = CompactingFilter::from_bytes(&f.to_bytes()).unwrap();
    for &k in &oracle {
        assert!(restored.contains(k), "snapshot lost {k}");
    }
    drop(f);
    restored.compact_all();
    assert!(oracle.iter().all(|&k| restored.contains(k)));
}
