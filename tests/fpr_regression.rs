//! Empirical false-positive-rate regression tests.
//!
//! Every filter family is built at a fixed seed over a fixed
//! workload, so the measured FPR is a deterministic number — these
//! tests pin it within 1.5× of the configured epsilon, catching
//! regressions in hashing, sizing arithmetic, or probe layout that
//! unit tests (which check membership, not rates) would miss.
//!
//! The 1.5× budget is intentionally tighter than the 2–2.5× sanity
//! bounds in the per-crate unit tests: with 200k probes the binomial
//! noise at ε = 1% is ±~7% relative, so 1.5× only passes when the
//! achieved rate is genuinely near the configured target.

use beyond_bloom::core::{Filter, InsertFilter};
use beyond_bloom::workloads::{disjoint_keys, unique_keys};

const N: usize = 100_000;
const PROBES: usize = 200_000;

/// Measured FPR of `contains` over `PROBES` never-inserted keys.
fn measured_fpr(probes: &[u64], contains: impl Fn(u64) -> bool) -> f64 {
    probes.iter().filter(|&&k| contains(k)).count() as f64 / probes.len() as f64
}

/// Assert `fpr <= 1.5 × eps`, and that the filter is not trivially
/// over-sized (an FPR of ~0 at ε = 1% usually means sizing is wrong
/// in the other direction — or membership is broken and everything
/// returns false, which the no-false-negative check catches).
fn assert_fpr_near(name: &str, fpr: f64, eps: f64) {
    assert!(fpr <= 1.5 * eps, "{name}: measured FPR {fpr} > 1.5×{eps}");
    assert!(
        fpr >= eps / 100.0,
        "{name}: measured FPR {fpr} implausibly far below {eps}"
    );
}

#[test]
fn plain_bloom_fpr() {
    let eps = 0.01;
    let keys = unique_keys(1000, N);
    let probes = disjoint_keys(1001, PROBES, &keys);
    let mut f = beyond_bloom::bloom::BloomFilter::with_seed(N, eps, 7);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    assert!(keys.iter().all(|&k| f.contains(k)));
    assert_fpr_near("bloom", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn blocked_bloom_fpr() {
    let eps = 0.01;
    let keys = unique_keys(1002, N);
    let probes = disjoint_keys(1003, PROBES, &keys);
    let mut f = beyond_bloom::bloom::BlockedBloomFilter::with_seed(N, eps, 7);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    assert!(keys.iter().all(|&k| f.contains(k)));
    assert_fpr_near(
        "blocked-bloom",
        measured_fpr(&probes, |k| f.contains(k)),
        eps,
    );
}

#[test]
fn atomic_blocked_bloom_fpr() {
    let eps = 0.01;
    let keys = unique_keys(1004, N);
    let probes = disjoint_keys(1005, PROBES, &keys);
    let f = beyond_bloom::bloom::AtomicBlockedBloomFilter::with_seed(N, eps, 7);
    f.insert_batch(&keys);
    assert!(keys.iter().all(|&k| f.contains(k)));
    assert_fpr_near(
        "atomic-blocked",
        measured_fpr(&probes, |k| f.contains(k)),
        eps,
    );
}

#[test]
fn two_choice_bloom_fpr() {
    // Two-choice placement plus ~2 extra bits/key keeps the register
    // -blocked layout (fixed k=8) inside the same 1.5×ε budget.
    let eps = 0.01;
    let keys = unique_keys(1020, N);
    let probes = disjoint_keys(1021, PROBES, &keys);
    let mut f = beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::with_seed(N, eps, 7);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    assert!(keys.iter().all(|&k| f.contains(k)));
    assert_fpr_near("two-choice", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn cuckoo_fpr() {
    // Configured rate at the achieved load: 2·b·2^-fp_bits·load.
    let keys = unique_keys(1006, N);
    let probes = disjoint_keys(1007, PROBES, &keys);
    let mut f = beyond_bloom::cuckoo::CuckooFilter::with_params(N, 12, 4, 7);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    assert!(keys.iter().all(|&k| f.contains(k)));
    let eps = f.expected_fpr();
    assert_fpr_near("cuckoo", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn quotient_fpr() {
    // QF false positives are fingerprint collisions: ε ≈ load·2^-r.
    let (q, r) = (17u32, 10u32);
    let keys = unique_keys(1008, N);
    let probes = disjoint_keys(1009, PROBES, &keys);
    let mut f = beyond_bloom::quotient::QuotientFilter::with_seed(q, r, 7);
    for &k in &keys {
        f.insert(k).unwrap();
    }
    assert!(keys.iter().all(|&k| f.contains(k)));
    let load = N as f64 / (1u64 << q) as f64;
    let eps = load * 0.5f64.powi(r as i32);
    assert_fpr_near("quotient", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn xor_fpr() {
    // Static filter: ε = 2^-fp_bits exactly by construction.
    let fp_bits = 10u32;
    let keys = unique_keys(1010, N);
    let probes = disjoint_keys(1011, PROBES, &keys);
    let f = beyond_bloom::xorf::XorFilter::build_with_seed(&keys, fp_bits, 7).unwrap();
    assert!(keys.iter().all(|&k| f.contains(k)));
    let eps = 0.5f64.powi(fp_bits as i32);
    assert_fpr_near("xor", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn fuse3_fpr() {
    // Static filter: ε = 2^-fp_bits exactly by construction.
    let fp_bits = 8u32;
    let keys = unique_keys(1014, N);
    let probes = disjoint_keys(1015, PROBES, &keys);
    let f = beyond_bloom::xorf::BinaryFuseFilter::build_with_seed(
        &keys,
        beyond_bloom::xorf::FuseArity::Three,
        fp_bits,
        7,
    )
    .unwrap();
    assert!(keys.iter().all(|&k| f.contains(k)));
    let eps = 0.5f64.powi(fp_bits as i32);
    assert_fpr_near("fuse3", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn fuse4_fpr() {
    let fp_bits = 8u32;
    let keys = unique_keys(1016, N);
    let probes = disjoint_keys(1017, PROBES, &keys);
    let f = beyond_bloom::xorf::BinaryFuseFilter::build_with_seed(
        &keys,
        beyond_bloom::xorf::FuseArity::Four,
        fp_bits,
        7,
    )
    .unwrap();
    assert!(keys.iter().all(|&k| f.contains(k)));
    let eps = 0.5f64.powi(fp_bits as i32);
    assert_fpr_near("fuse4", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn compacting_fpr_after_full_compaction() {
    // Post-compaction the keys live in one fuse tier (ε = 2^-8) plus
    // an empty front Bloom that contributes nothing.
    let eps = 1.0 / 256.0;
    let keys = unique_keys(1018, N);
    let probes = disjoint_keys(1019, PROBES, &keys);
    let f = beyond_bloom::compacting::CompactingFilter::new(
        beyond_bloom::compacting::CompactingConfig::new(4096, eps, 7),
    );
    for &k in &keys {
        f.insert(k);
    }
    f.compact_all();
    assert!(keys.iter().all(|&k| f.contains(k)));
    assert_fpr_near("compacting", measured_fpr(&probes, |k| f.contains(k)), eps);
}

#[test]
fn sharded_bloom_fpr_matches_unsharded_budget() {
    // Sharding must not change the rate: each shard is a Bloom filter
    // sized for its share of the keys at the same ε.
    let eps = 0.01;
    let keys = unique_keys(1012, N);
    let probes = disjoint_keys(1013, PROBES, &keys);
    let shard_bits = 4u32;
    let per_shard = N >> shard_bits;
    let f = beyond_bloom::concurrent::Sharded::new(shard_bits, |i| {
        beyond_bloom::bloom::BloomFilter::with_seed(per_shard + per_shard / 8, eps, 7 ^ i as u64)
    });
    f.insert_batch(&keys).unwrap();
    assert!(keys.iter().all(|&k| f.contains(k)));
    assert_fpr_near(
        "sharded-bloom",
        measured_fpr(&probes, |k| f.contains(k)),
        eps,
    );
}
