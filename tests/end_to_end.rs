//! End-to-end application tests: the LSM engine against a reference
//! model, and the bio / netsec pipelines on realistic flows.

use beyond_bloom::lsm::{FilterKind, IndexMode, LsmConfig, LsmTree, RangeFilterKind};
use beyond_bloom::workloads::dna;
use std::collections::BTreeMap;

/// Random interleavings of puts, overwrite-puts, point gets and range
/// scans checked against a BTreeMap.
#[test]
fn lsm_matches_btreemap_model() {
    for (mode, filter) in [
        (IndexMode::PerRunFilters, FilterKind::Bloom),
        (IndexMode::PerRunFilters, FilterKind::Xor),
        (IndexMode::GlobalMaplet, FilterKind::None),
    ] {
        let mut t = LsmTree::new(LsmConfig {
            memtable_capacity: 256,
            size_ratio: 3,
            filter_kind: filter,
            index_mode: mode,
            range_filter: RangeFilterKind::Grafite {
                l_bits: 10,
                eps: 0.01,
            },
            ..Default::default()
        });
        let mut model = BTreeMap::new();
        let mut rng_state = 0x1234_5678u64;
        let mut next = || {
            rng_state = beyond_bloom::core::hash::mix64(rng_state);
            rng_state
        };
        for i in 0..20_000u64 {
            let k = next() % 4_096; // heavy overwrites
            t.put(k, i);
            model.insert(k, i);
            if i % 97 == 0 {
                let probe = next() % 8_192;
                assert_eq!(t.get(probe), model.get(&probe).copied(), "get({probe})");
            }
            if i % 397 == 0 {
                let lo = next() % 4_096;
                let hi = lo + next() % 256;
                let got = t.scan(lo, hi);
                let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, want, "scan [{lo}, {hi}]");
            }
        }
        t.flush();
        for (&k, &v) in &model {
            assert_eq!(t.get(k), Some(v), "{mode:?}: final get({k})");
        }
    }
}

/// Write-heavy churn forces repeated compaction through every level.
#[test]
fn lsm_survives_deep_compaction() {
    let mut t = LsmTree::new(LsmConfig {
        memtable_capacity: 128,
        size_ratio: 2,
        ..Default::default()
    });
    for i in 0..30_000u64 {
        t.put(beyond_bloom::core::hash::mix64(i), i);
    }
    t.flush();
    assert!(t.level_count() >= 5, "only {} levels", t.level_count());
    for i in (0..30_000u64).step_by(313) {
        assert_eq!(t.get(beyond_bloom::core::hash::mix64(i)), Some(i));
    }
}

/// Full genomics flow: reads → k-mer counts → search index → graph.
#[test]
fn genomics_pipeline() {
    let genome = dna::random_sequence(42, 20_000);
    let reads = dna::reads_from(&genome, 43, 800, 100, 0.01);

    let mut counter = beyond_bloom::biofilter::KmerCounter::new(21, 40_000, 1.0 / 1024.0);
    counter.ingest_all(reads.iter().map(|r| r.as_slice()));
    assert!(counter.total_kmers() > 60_000);

    // Most genome k-mers were covered by reads.
    let genome_kmers = dna::kmers(&genome, 21);
    let covered = genome_kmers
        .iter()
        .filter(|&&km| counter.count_kmer(km) > 0)
        .count();
    assert!(
        covered as f64 / genome_kmers.len() as f64 > 0.9,
        "only {covered} covered"
    );

    // Index 8 experiments and find a fragment's source.
    let experiments: Vec<Vec<u8>> = (0..8)
        .map(|i| dna::random_sequence(50 + i, 10_000))
        .collect();
    let mantis = beyond_bloom::biofilter::MantisIndex::build(&experiments, 21, 1.0 / 4096.0);
    let sbt = beyond_bloom::biofilter::SequenceBloomTree::from_sequences(&experiments, 21, 0.01);
    for (i, e) in experiments.iter().enumerate() {
        let frag = &e[2_000..2_250];
        assert!(
            mantis.query_seq(frag, 0.9).contains(&i),
            "mantis missed {i}"
        );
        assert!(sbt.query_seq(frag, 0.9).contains(&i), "sbt missed {i}");
    }

    // Graph navigation along the genome is complete.
    let truth: std::collections::HashSet<u64> = genome_kmers.iter().copied().collect();
    let graph = beyond_bloom::biofilter::DeBruijnGraph::build(&truth, 21, 0.05);
    let path = dna::kmers(&genome, 21);
    for w in path.windows(2).take(2_000) {
        assert!(graph.contains(w[0]));
        assert!(w[0] == w[1] || graph.neighbours(w[0]).contains(&w[1]));
    }
}

/// Full URL-blocking flow with a mid-stream workload shift.
#[test]
fn url_blocking_pipeline() {
    use beyond_bloom::netsec::{AdaptiveBlocker, UrlBlocker, Verdict};
    use beyond_bloom::workloads::urls::UrlWorkload;

    let w = UrlWorkload::generate(77, 5_000, 200, 5_000);
    let mut blocker = AdaptiveBlocker::new(&w.malicious, 6);
    let stream = w.query_stream(78, 50_000, 0.6);
    let mut blocked = 0u64;
    let mut missed = 0u64;
    for (url, is_mal) in &stream {
        match blocker.check(url) {
            Verdict::Blocked => blocked += 1,
            _ if *is_mal => missed += 1,
            _ => {}
        }
    }
    assert_eq!(missed, 0, "missed malicious URLs");
    assert_eq!(blocked, stream.iter().filter(|(_, m)| *m).count() as u64);
    // The adaptive filter converges: almost all verifications are for
    // genuinely malicious URLs.
    let mal = blocked;
    let benign_verifs = blocker.verifications() - mal;
    assert!(
        benign_verifs < 600,
        "adaptive blocker paid {benign_verifs} benign verifications"
    );
}
