//! Cross-dispatch equivalence for the SIMD probe engine.
//!
//! The module's load-bearing invariant is that every dispatch tier —
//! portable SWAR, NEON, SSE2, AVX2, AVX-512 (and PDEP vs Gog–Petri
//! select) — is bit-identical on every input, so runtime dispatch
//! can never change a filter's answers, only its speed. These tests
//! hammer the level-explicit `*_at` entry points with 10k+ random
//! inputs per primitive across every tier the host supports
//! (`usable_levels` skips undetected tiers gracefully), and pin the
//! `BEYOND_BLOOM_FORCE_SCALAR` / `force_level` knobs the CI
//! `simd-matrix` job and the E21/E25 harnesses rely on.

use beyond_bloom::core::simd::{self, SimdLevel};
use beyond_bloom::core::{BatchedFilter, Filter, InsertFilter};

/// Deterministic 64-bit stream (splitmix64) — no RNG dependency.
fn stream(mut seed: u64) -> impl Iterator<Item = u64> {
    std::iter::repeat_with(move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    })
}

/// Every tier that genuinely executes on this machine, ascending —
/// tiers the hardware lacks (e.g. AVX-512 on an older x86, NEON on
/// x86 at all) are skipped rather than failed.
fn levels() -> Vec<SimdLevel> {
    let l = simd::usable_levels();
    assert_eq!(l[0], SimdLevel::Swar, "SWAR is always usable");
    l
}

#[test]
fn block_mask_256_identical_across_levels() {
    let levels = levels();
    for h in stream(101).take(10_000) {
        let h = h as u32;
        let want = simd::block_mask_256_at(SimdLevel::Swar, h);
        for &l in &levels[1..] {
            assert_eq!(simd::block_mask_256_at(l, h), want, "h {h:#x} at {l:?}");
        }
    }
}

#[test]
fn covered_and_testzero_256_identical_across_levels() {
    let levels = levels();
    let mut it = stream(202);
    for _ in 0..10_000 {
        let h = it.next().unwrap() as u32;
        // Blocks at several densities: empty, sparse, dense, full.
        let fill = it.next().unwrap();
        let mut block = [0u64; 4];
        match fill % 4 {
            0 => {}
            1 => simd::or_into_256(&mut block, &simd::block_mask_256(h)),
            2 => {
                for w in &mut block {
                    *w = it.next().unwrap();
                }
            }
            _ => block = [u64::MAX; 4],
        }
        let mask = simd::block_mask_256(it.next().unwrap() as u32);
        let want_cov = simd::covered_256_at(SimdLevel::Swar, &block, &mask);
        let want_zero = simd::testzero_256_at(SimdLevel::Swar, &block);
        for &l in &levels[1..] {
            assert_eq!(simd::covered_256_at(l, &block, &mask), want_cov, "at {l:?}");
            assert_eq!(simd::testzero_256_at(l, &block), want_zero, "at {l:?}");
        }
        // The two-choice pair probe must agree with the OR of two
        // single-block probes, at every tier. A sibling block built
        // from an unrelated mask makes roughly half the pairs differ
        // between halves.
        let sibling = simd::block_mask_256(it.next().unwrap() as u32);
        for pair in [[block, sibling], [sibling, block], [block, block]] {
            let want = simd::covered_256_at(SimdLevel::Swar, &pair[0], &mask)
                | simd::covered_256_at(SimdLevel::Swar, &pair[1], &mask);
            for &l in &levels {
                assert_eq!(simd::covered_pair_256_at(l, &pair, &mask), want, "at {l:?}");
            }
        }
    }
}

#[test]
fn covered_512_identical_across_levels() {
    let levels = levels();
    let mut it = stream(303);
    for _ in 0..10_000 {
        let (h1, h2) = (it.next().unwrap(), it.next().unwrap());
        let k = (h1 % 16) as u32 + 1;
        let mask = simd::block_mask_512(h1, h2, k);
        let mut block = mask; // covered case
        if h2 & 1 == 0 {
            // Knock one bit out so roughly half the cases are misses.
            let w = (h2 >> 1) as usize % 8;
            if mask[w] != 0 {
                block[w] &= mask[w] - 1;
            }
        }
        let want = simd::covered_512_at(SimdLevel::Swar, &block, &mask);
        for &l in &levels[1..] {
            assert_eq!(simd::covered_512_at(l, &block, &mask), want, "at {l:?}");
        }
    }
}

#[test]
fn block_mask_512_and_testzero_512_identical_across_levels() {
    let levels = levels();
    let mut it = stream(808);
    for _ in 0..10_000 {
        let (h1, h2) = (it.next().unwrap(), it.next().unwrap());
        let k = (h1 % 16) as u32 + 1;
        let want_mask = simd::block_mask_512_at(SimdLevel::Swar, h1, h2, k);
        for &l in &levels[1..] {
            assert_eq!(
                simd::block_mask_512_at(l, h1, h2, k),
                want_mask,
                "mask h1 {h1:#x} h2 {h2:#x} k {k} at {l:?}"
            );
        }
        let mut rnd = [0u64; 8];
        for w in &mut rnd {
            *w = it.next().unwrap();
        }
        // Empty, one-mask, random, and saturated blocks.
        for block in [[0u64; 8], want_mask, rnd, [u64::MAX; 8]] {
            let want = simd::testzero_512_at(SimdLevel::Swar, &block);
            for &l in &levels[1..] {
                assert_eq!(simd::testzero_512_at(l, &block), want, "at {l:?}");
            }
        }
    }
}

#[test]
fn select_word_identical_across_levels_and_total() {
    let levels = levels();
    for w in stream(404).take(10_000) {
        for k in 0..=w.count_ones() {
            // k == count_ones probes the out-of-range None contract.
            let want = simd::select_word_at(SimdLevel::Swar, w, k);
            for &l in &levels[1..] {
                assert_eq!(
                    simd::select_word_at(l, w, k),
                    want,
                    "w {w:#x} k {k} at {l:?}"
                );
            }
        }
    }
    for l in levels {
        assert_eq!(simd::select_word_at(l, 0, 0), None);
        assert_eq!(simd::select_word_at(l, u64::MAX, 63), Some(63));
        assert_eq!(simd::select_word_at(l, u64::MAX, 64), None);
    }
}

#[test]
fn select0_u128_identical_across_levels() {
    let levels = levels();
    let mut it = stream(505);
    for _ in 0..10_000 {
        let x = (it.next().unwrap() as u128) << 64 | it.next().unwrap() as u128;
        let zeros = 128 - x.count_ones();
        for k in [0, zeros / 2, zeros.saturating_sub(1), zeros, zeros + 1] {
            let want = simd::select0_u128_at(SimdLevel::Swar, x, k);
            for &l in &levels[1..] {
                assert_eq!(
                    simd::select0_u128_at(l, x, k),
                    want,
                    "x {x:#x} k {k} at {l:?}"
                );
            }
        }
    }
    for l in levels {
        assert_eq!(simd::select0_u128_at(l, u128::MAX, 0), None);
        assert_eq!(simd::select0_u128_at(l, u64::MAX as u128, 0), Some(64));
    }
}

/// End-to-end: a filter built once answers identically while the
/// global dispatch level is forced through every tier. Exercises the
/// same `force_level` knob the E21 harness uses.
#[test]
fn filters_answer_identically_under_forced_levels() {
    let keys: Vec<u64> = stream(606).take(4_000).collect();
    let probes: Vec<u64> = stream(707).take(10_000).collect();

    let mut blocked = beyond_bloom::bloom::BlockedBloomFilter::with_seed(4_000, 0.01, 3);
    let mut register = beyond_bloom::bloom::RegisterBlockedBloomFilter::with_seed(4_000, 0.01, 3);
    let atomic = beyond_bloom::bloom::AtomicBlockedBloomFilter::with_seed(4_000, 0.01, 3);
    let mut two_choice =
        beyond_bloom::bloom::TwoChoiceRegisterBloomFilter::with_seed(4_000, 0.01, 3);
    for &k in &keys {
        blocked.insert(k).unwrap();
        register.insert(k).unwrap();
        atomic.insert(k);
        two_choice.insert(k).unwrap();
    }

    let reference: Vec<(bool, bool, bool, bool)> = {
        simd::force_level(Some(SimdLevel::Swar));
        let r = probes
            .iter()
            .map(|&p| {
                (
                    blocked.contains(p),
                    register.contains(p),
                    atomic.contains(p),
                    two_choice.contains(p),
                )
            })
            .collect();
        simd::force_level(None);
        r
    };

    let mut out = vec![false; probes.len()];
    for l in levels() {
        simd::force_level(Some(l));
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(blocked.contains(p), reference[i].0, "blocked at {l:?}");
            assert_eq!(register.contains(p), reference[i].1, "register at {l:?}");
            assert_eq!(atomic.contains(p), reference[i].2, "atomic at {l:?}");
            assert_eq!(
                two_choice.contains(p),
                reference[i].3,
                "two-choice at {l:?}"
            );
        }
        // Batched paths too (they hoist the level once per chunk).
        register.contains_many(&probes, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, reference[i].1, "register batched at {l:?}");
        }
        two_choice.contains_many(&probes, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, reference[i].3, "two-choice batched at {l:?}");
        }
        simd::force_level(None);
    }
}

/// `force_level` requests above the hardware tier clamp down instead
/// of dispatching into unsupported instructions.
#[test]
fn force_level_clamps_to_detected() {
    for l in [SimdLevel::Avx2, SimdLevel::Avx512] {
        simd::force_level(Some(l));
        assert!(simd::active_level() <= simd::detected_level());
        simd::force_level(None);
    }
}
