//! Quickstart: a tour of the filter families through the shared trait
//! hierarchy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use beyond_bloom::core::{
    AdaptiveFilter, CountingFilter, DynamicFilter, Expandable, Filter, InsertFilter, Maplet,
    RangeFilter,
};

fn main() {
    let keys = beyond_bloom::workloads::unique_keys(1, 100_000);
    let absent = beyond_bloom::workloads::disjoint_keys(2, 100_000, &keys);

    // --- Semi-dynamic: the 1970 baseline -----------------------------
    let mut bloom = beyond_bloom::bloom::BloomFilter::new(keys.len(), 0.01);
    for &k in &keys {
        bloom.insert(k).unwrap();
    }
    report("Bloom (1970)", &bloom, &keys, &absent);

    // --- Static: runs are immutable? use an algebraic filter ---------
    let xor = beyond_bloom::xorf::XorFilter::build(&keys, 8).unwrap();
    report("XOR (static)", &xor, &keys, &absent);
    let ribbon = beyond_bloom::ribbon::RibbonFilter::build(&keys, 8).unwrap();
    report("Ribbon (static)", &ribbon, &keys, &absent);

    // --- Dynamic: inserts AND deletes --------------------------------
    let mut qf = beyond_bloom::quotient::QuotientFilter::for_capacity(keys.len(), 0.01);
    for &k in &keys {
        qf.insert(k).unwrap();
    }
    qf.remove(keys[0]).unwrap();
    println!(
        "QuotientFilter: removed a key; contains(now) = {}",
        qf.contains(keys[0])
    );
    report("Quotient (dynamic)", &qf, &keys[1..], &absent);

    // --- Counting: multisets ------------------------------------------
    let mut cqf = beyond_bloom::quotient::CountingQuotientFilter::for_capacity(1_000, 0.001);
    for _ in 0..42 {
        cqf.insert_count(7, 1).unwrap();
    }
    println!(
        "CQF: inserted key 7 forty-two times; count = {}",
        cqf.count(7)
    );

    // --- Expandable: don't know n in advance? -------------------------
    let mut inf = beyond_bloom::infini::InfiniFilter::new(8, 14);
    for &k in &keys {
        inf.insert(k).unwrap();
    }
    println!(
        "InfiniFilter: grew from 256 to {} slots across {} expansions; fpr stays near 2^-14",
        Expandable::capacity(&inf),
        inf.expansions()
    );

    // --- Adaptive: fix false positives as they're found ---------------
    let mut aqf = beyond_bloom::adaptive::AdaptiveQuotientFilter::new(17, 6);
    for &k in &keys {
        aqf.insert(k).unwrap();
    }
    let fps: Vec<u64> = absent
        .iter()
        .copied()
        .filter(|&k| aqf.contains(k))
        .collect();
    for &k in &fps {
        aqf.adapt(k);
    }
    let fixed = fps.iter().filter(|&&k| !aqf.contains(k)).count();
    println!(
        "AdaptiveQF: found {} false positives, repaired {}",
        fps.len(),
        fixed
    );

    // --- Maplets: associate small values -------------------------------
    let mut m = beyond_bloom::maplet::QuotientMaplet::for_capacity(1_000, 0.001, 16);
    m.insert(99, 0xbeef).unwrap();
    let mut vals = Vec::new();
    m.get(99, &mut vals);
    println!("QuotientMaplet: get(99) -> {vals:0x?}");

    // --- Range filters: is [lo, hi] empty? -----------------------------
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let grafite = beyond_bloom::rangefilter::Grafite::build(&sorted, 16, 0.01);
    println!(
        "Grafite: may_contain_range around a key = {}, in a gap = {}",
        grafite.may_contain_range(sorted[5] - 1, sorted[5] + 1),
        grafite.may_contain_range(sorted[5] + 1, sorted[5] + 3),
    );
}

fn report(name: &str, f: &dyn Filter, present: &[u64], absent: &[u64]) {
    let fn_count = present.iter().filter(|&&k| !f.contains(k)).count();
    let fp = absent.iter().filter(|&&k| f.contains(k)).count();
    println!(
        "{name:<20} {:>6.2} bits/key  fpr {:.4}  false negatives {fn_count}",
        f.bits_per_key(),
        fp as f64 / absent.len() as f64,
    );
}
