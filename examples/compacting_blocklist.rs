//! A live blocklist on the compacting filter LSM — the tutorial's
//! §3.1 space argument made concrete: a feed keeps appending entries
//! (mutable writes), lookups must never block, and steady-state
//! memory should approach a *static* filter's bits/key rather than a
//! mutable filter's.
//!
//! Walks the tier lifecycle end to end: memtable front fills → seals
//! → a background thread compacts sealed fronts into immutable binary
//! fuse tiers → `compact_all` collapses everything into one tier at
//! ~9 bits/key, all while this thread keeps probing.
//!
//! ```text
//! cargo run --release --example compacting_blocklist
//! ```

use beyond_bloom::bloom::AtomicBlockedBloomFilter;
use beyond_bloom::compacting::{CompactingConfig, CompactingFilter};
use beyond_bloom::core::Filter;
use beyond_bloom::workloads::{disjoint_keys, unique_keys};

fn bpk(f: &dyn Filter, n: usize) -> f64 {
    f.size_in_bytes() as f64 * 8.0 / n as f64
}

fn main() {
    const N: usize = 500_000;
    const EPS: f64 = 1.0 / 256.0; // 8-bit fingerprints

    // A feed of blocklist entries (hashed URLs, IPs, cert digests...).
    let feed = unique_keys(41, N);
    let clean = disjoint_keys(42, N, &feed);

    let filter = CompactingFilter::new(CompactingConfig::new(16_384, EPS, 7));
    println!("ingesting {N} blocklist entries, front capacity 16384...\n");

    // Ingest in bursts, probing between bursts: inserts go to the
    // mutable front; seals and compactions happen behind the scenes.
    for (i, burst) in feed.chunks(N / 5).enumerate() {
        for &k in burst {
            filter.insert(k);
        }
        let st = filter.stats();
        println!(
            "after burst {}: {:>7} keys | front {:>5} | sealed {} | tiers {} \
             | {:>5.2} bits/key | {} seals, {} compactions",
            i + 1,
            filter.len(),
            st.front_keys,
            st.sealed_fronts,
            st.tiers,
            bpk(&filter, filter.len()),
            st.seals,
            st.compactions,
        );
    }

    // Every entry is still visible — the LSM never drops a key across
    // seal/compact rotations.
    assert!(feed.iter().all(|&k| filter.contains(k)));

    // Collapse to the canonical single-tier state and compare space
    // against a mutable-only Bloom sized for the same capacity.
    filter.compact_all();
    let baseline = AtomicBlockedBloomFilter::with_seed(N, EPS, 7);
    for &k in &feed {
        baseline.insert(k);
    }
    let fp = clean.iter().filter(|&&k| filter.contains(k)).count();
    println!(
        "\nafter full compaction: {} tier(s), {:.2} bits/key \
         (mutable-only Bloom: {:.2})",
        filter.stats().tiers,
        bpk(&filter, N),
        bpk(&baseline, N),
    );
    println!(
        "measured FPR on {} clean keys: {:.4}% (budget {:.4}%)",
        clean.len(),
        100.0 * fp as f64 / clean.len() as f64,
        100.0 * EPS,
    );

    // The filter is still mutable: the next feed delta lands in a
    // fresh front and the cycle continues.
    let delta = disjoint_keys(43, 1_000, &feed);
    for &k in &delta {
        filter.insert(k);
    }
    assert!(delta.iter().all(|&k| filter.contains(k)));
    println!("\ningested a 1k-entry delta post-compaction; all visible.");
}
