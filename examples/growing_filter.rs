//! Expansion strategies compared — the tutorial's §2.2 narrative as a
//! runnable demo: the same growing key stream pushed through (a) a
//! plain doubling quotient filter, (b) a chained scalable Bloom
//! filter, and (c) an InfiniFilter, printing FPR and query cost as
//! the data outgrows every initial guess.
//!
//! ```text
//! cargo run --release --example growing_filter
//! ```

use beyond_bloom::core::{Expandable, Filter, InsertFilter};

fn main() {
    let keys = beyond_bloom::workloads::unique_keys(11, 400_000);
    let probes = beyond_bloom::workloads::disjoint_keys(12, 30_000, &keys);

    let mut qf = beyond_bloom::quotient::QuotientFilter::new(12, 10);
    qf.set_auto_expand(true);
    let mut sbf = beyond_bloom::bloom::ScalableBloomFilter::new(4_096, 0.001);
    let mut inf = beyond_bloom::infini::InfiniFilter::new(12, 10);

    println!(
        "{:>9} | {:>11} {:>5} | {:>11} {:>6} | {:>11} {:>5}",
        "inserted", "qf fpr", "r", "chain fpr", "stages", "infini fpr", "exp"
    );
    let mut qf_dead = false;
    for (i, &k) in keys.iter().enumerate() {
        if !qf_dead {
            qf_dead = qf.insert(k).is_err();
        }
        sbf.insert(k).unwrap();
        inf.insert(k).unwrap();
        if (i + 1) % 50_000 == 0 {
            let fpr = |f: &dyn Filter| {
                probes.iter().filter(|&&p| f.contains(p)).count() as f64 / probes.len() as f64
            };
            println!(
                "{:>9} | {:>11.5} {:>5} | {:>11.5} {:>6} | {:>11.5} {:>5}{}",
                i + 1,
                fpr(&qf),
                qf.remainder_bits(),
                fpr(&sbf),
                sbf.stages(),
                fpr(&inf),
                inf.expansions(),
                if qf_dead { "   (qf exhausted)" } else { "" }
            );
        }
    }
    println!(
        "\nplain doubling: FPR doubles per expansion until remainders run out;\n\
         chaining: stable FPR but every negative query probes all {} stages;\n\
         InfiniFilter: stable FPR, single structure, {} expansions.",
        sbf.stages(),
        inf.expansions()
    );
}
