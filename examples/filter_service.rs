//! Filter-as-a-service quickstart: start a server on an ephemeral
//! loopback port, create a Bloom instance over the wire, load it with
//! a malicious-URL blocklist from the `workloads::urls` generator,
//! query a mixed stream, and read back the server's STATS frame.
//!
//! ```text
//! cargo run --release --example filter_service
//! ```

use beyond_bloom::core::hash::hash_bytes;
use beyond_bloom::service::{Backend, FilterClient, FilterServer, ServerConfig};
use beyond_bloom::workloads::urls::UrlWorkload;

/// URLs are strings; the wire protocol carries `u64` keys, so client
/// and server agree on a keying hash applied before the filter ever
/// sees the data (the usual deployment split).
fn url_key(url: &str) -> u64 {
    hash_bytes(0xb10c_11f7, url.as_bytes())
}

fn main() {
    let server = FilterServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("filter server listening on {addr}");

    let w = UrlWorkload::generate(42, 20_000, 500, 5_000);
    let mut client = FilterClient::connect(addr).expect("connect");

    client
        .create("blocklist", Backend::AtomicBloom, 20_000, 0.001, 0, 42)
        .expect("create");
    let blocklist: Vec<u64> = w.malicious.iter().map(|u| url_key(u)).collect();
    for chunk in blocklist.chunks(4096) {
        client.insert("blocklist", chunk).expect("insert");
    }
    println!("loaded {} malicious URLs into 'blocklist'", blocklist.len());

    let stream = w.query_stream(43, 50_000, 0.7);
    let keys: Vec<u64> = stream.iter().map(|(u, _)| url_key(u)).collect();
    let mut blocked = 0usize;
    let mut false_positives = 0usize;
    for (batch, truth) in keys.chunks(1024).zip(stream.chunks(1024)) {
        let verdicts = client.contains("blocklist", batch).expect("contains");
        for (hit, (_, is_malicious)) in verdicts.iter().zip(truth) {
            blocked += *hit as usize;
            false_positives += (*hit && !is_malicious) as usize;
        }
    }
    println!(
        "queried {} URLs in batches of 1024: {blocked} blocked, \
         {false_positives} false positives (target eps 0.001)",
        stream.len()
    );

    let stats = client.stats().expect("stats");
    println!("\nSTATS from the server:");
    for f in &stats.filters {
        println!(
            "  {} [{}]  ~{} keys, {} bytes",
            f.name,
            f.backend.name(),
            f.len,
            f.size_in_bytes
        );
    }
    let c = &stats.counters;
    println!(
        "  {} frames in, {} responses out, {} keys processed",
        c.frames_received, c.responses_sent, c.keys_processed
    );
    println!(
        "  server-side request latency: p50 ≤ {:.1} us, p99 ≤ {:.1} us",
        c.request_latency.quantile_ns(0.50) as f64 / 1e3,
        c.request_latency.quantile_ns(0.99) as f64 / 1e3
    );

    drop(client);
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
