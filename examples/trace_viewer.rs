//! Distributed-trace viewer: trace one routed request across a
//! two-node cluster and emit the assembled cross-process trace as
//! Chrome `trace_event` JSON — open the file in `about:tracing` or
//! https://ui.perfetto.dev to see client routing, per-node RPCs,
//! server dispatch, and engine spans on one timeline.
//!
//! ```text
//! cargo run --release --example trace_viewer > trace.json
//! ```

use beyond_bloom::service::{Backend, ClusterClient, EventedFilterServer, ServerConfig};
use beyond_bloom::telemetry::trace::chrome_trace_json;
use beyond_bloom::workloads::unique_keys;

fn main() {
    // Two in-process nodes; nothing here depends on the transport —
    // the trace context rides the frame header either way.
    let node_a = EventedFilterServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind a");
    let node_b = EventedFilterServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind b");
    let mut cluster =
        ClusterClient::new(vec![node_a.local_addr(), node_b.local_addr()]).expect("cluster");

    // A few tenants so the traced MULTI_CONTAINS has a registry (and
    // a Bloofi tree) to descend on every node.
    let keys = unique_keys(42, 10_000);
    for i in 0..4 {
        let name = format!("tenant-{i}");
        cluster
            .create(&name, Backend::ShardedCuckoo, 50_000, 0.01, 2, 7 + i)
            .expect("create");
        cluster.insert(&name, &keys).expect("insert");
    }

    // Trace one routed request: the client opens a forced root span,
    // every RPC carries the trace context on the wire, each server
    // records its dispatch and engine spans under that context, and
    // `trace_route` drains the per-node stores and merges everything
    // into one cross-process trace.
    let trace = cluster.trace_route(keys[0]).expect("trace_route");
    eprintln!(
        "assembled trace {:#018x}: {} spans across {} processes/threads",
        trace.trace_id,
        trace.spans.len(),
        {
            let mut tids: Vec<_> = trace.spans.iter().map(|s| (s.pid, s.tid)).collect();
            tids.sort_unstable();
            tids.dedup();
            tids.len()
        }
    );
    for s in &trace.spans {
        eprintln!(
            "  {:<26} span={:#010x} parent={:#010x} {:>7}us",
            s.name, s.span_id, s.parent_id, s.dur_us
        );
    }

    // Chrome trace_event JSON on stdout; redirect to a file and load
    // it in a trace viewer.
    println!("{}", chrome_trace_json(&[trace]));
}
