//! Live filter dashboard: drive the filter service with a skewed
//! workload while a scrape loop periodically fetches the METRICS
//! frame (Prometheus text), parses it with `telemetry::expo`, and
//! renders a plain-text dashboard — the minimum viable Grafana.
//!
//! The point being demonstrated: everything on screen comes out of
//! one wire opcode. Request rates and latency quantiles from the
//! server families, kick-chain and cluster-length behaviour from the
//! filter-crate families, per-shard load skew from the inventory
//! gauges, and the slow-request log from the trailing comment lines.
//!
//! ```text
//! cargo run --release --example filter_dashboard
//! ```

use beyond_bloom::service::{Backend, FilterClient, FilterServer, ServerConfig};
use beyond_bloom::telemetry::expo::{self, Exposition};
use beyond_bloom::workloads::zipf::{rank_to_key, Zipf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TICKS: usize = 6;
const SCRAPE_EVERY: Duration = Duration::from_millis(400);
const DISTINCT: u64 = 200_000;
const BATCH: usize = 1024;

/// One dashboard frame rendered from a parsed exposition.
fn render(tick: usize, dt: f64, prev_keys: f64, expo: &Exposition, text: &str) -> f64 {
    let keys = expo.value("bb_server_keys_processed_total").unwrap_or(0.0);
    let reqs = expo.value("bb_server_frames_received_total").unwrap_or(0.0);
    let p50 = expo
        .histogram_quantile("bb_server_request_latency_ns", 0.50)
        .unwrap_or(0.0);
    let p99 = expo
        .histogram_quantile("bb_server_request_latency_ns", 0.99)
        .unwrap_or(0.0);
    let kick_p99 = expo
        .histogram_quantile("bb_cuckoo_kick_chain_length", 0.99)
        .unwrap_or(0.0);
    let cqf_expands = expo.value("bb_cqf_expansions_total").unwrap_or(0.0);
    let slow = expo.value("bb_server_slow_requests_total").unwrap_or(0.0);

    println!(
        "tick {tick}  |  {:>8.0} keys/s  {:>6.0} reqs total  \
         lat p50≤{:>6.1}us p99≤{:>7.1}us  |  kick-chain p99≤{:>3.0}  \
         cqf expansions {:>2.0}  slow reqs {:>3.0}",
        (keys - prev_keys) / dt,
        reqs,
        p50 / 1e3,
        p99 / 1e3,
        kick_p99,
        cqf_expands,
        slow,
    );

    // Per-shard load skew for the hottest filter: Zipf keys hash to
    // shards uniformly, so ops stay balanced even when keys are not.
    let hot: Vec<&expo::Family> = expo
        .family("bb_filter_shard_ops_total")
        .into_iter()
        .collect();
    for fam in hot {
        let mut ops: Vec<(&str, f64)> = fam
            .samples
            .iter()
            .filter(|s| s.labels.contains("hot"))
            .map(|s| (s.labels.as_str(), s.value))
            .collect();
        if ops.is_empty() {
            continue;
        }
        ops.sort_by(|a, b| b.1.total_cmp(&a.1));
        let total: f64 = ops.iter().map(|(_, v)| v).sum();
        let spark: String = ops
            .iter()
            .map(|(_, v)| {
                let frac = v / total.max(1.0);
                match (frac * 24.0) as u32 {
                    0 => '.',
                    1..=2 => ':',
                    3..=4 => '|',
                    _ => '#',
                }
            })
            .collect();
        println!("        shard ops ('hot', busiest→idlest): [{spark}]");
    }

    // The slow-request log rides along as comment lines.
    for line in text.lines().filter(|l| l.starts_with("# slow ")).take(2) {
        println!("        {line}");
    }
    keys
}

fn main() {
    // A 200us threshold on loopback batches yields a sparse, real
    // slow log rather than an empty or saturated one.
    let server = FilterServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            slow_request_threshold: Duration::from_micros(200),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    println!("filter service on {addr}; scraping METRICS every {SCRAPE_EVERY:?}\n");

    let mut admin = FilterClient::connect(addr).expect("connect");
    admin
        .create("hot", Backend::ShardedCuckoo, 300_000, 0.01, 3, 7)
        .expect("create hot");
    admin
        .create("cold", Backend::ShardedCqf, 100_000, 0.01, 3, 8)
        .expect("create cold");

    // Load generator: a unique insert stream (a cuckoo filter holds
    // only a few copies of any one fingerprint, so duplicate-heavy
    // inserts would hit its eviction limit) probed by Zipf(1.1)
    // membership queries skewed toward the earliest-inserted ranks —
    // mostly hits, warming with time. A trickle of fresh keys feeds
    // the auto-expanding CQF past its initial capacity.
    let stop = Arc::new(AtomicBool::new(false));
    let loader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = FilterClient::connect(addr).expect("loader connect");
            let zipf = Zipf::new(DISTINCT, 1.1);
            let mut rng = beyond_bloom::workloads::rng(99);
            let mut next_rank = 0u64;
            let mut cold_key = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if next_rank < DISTINCT {
                    let fresh: Vec<u64> = (0..BATCH as u64)
                        .map(|i| rank_to_key(next_rank + i + 1, 3))
                        .collect();
                    next_rank += BATCH as u64;
                    c.insert("hot", &fresh).expect("insert hot");
                }
                let probes: Vec<u64> = (0..BATCH)
                    .map(|_| rank_to_key(zipf.sample(&mut rng), 3))
                    .collect();
                let _ = c.contains("hot", &probes).expect("contains hot");
                let trickle: Vec<u64> = (0..BATCH / 4)
                    .map(|_| {
                        cold_key += 1;
                        cold_key
                    })
                    .collect();
                c.insert("cold", &trickle).expect("insert cold");
            }
        })
    };

    let mut prev_keys = 0.0;
    let mut last = Instant::now();
    for tick in 1..=TICKS {
        std::thread::sleep(SCRAPE_EVERY);
        let text = admin.metrics_text().expect("metrics");
        let parsed = expo::parse(&text).expect("valid exposition");
        let dt = last.elapsed().as_secs_f64();
        last = Instant::now();
        prev_keys = render(tick, dt, prev_keys, &parsed, &text);
    }

    stop.store(true, Ordering::Relaxed);
    loader.join().expect("loader");
    drop(admin);
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
