//! Thread-scaled k-mer-style counting — the tutorial's §1 feature 6
//! ("scale with the number of threads"): a sharded concurrent
//! counting quotient filter ingesting a skewed multiset from several
//! threads at once.
//!
//! ```text
//! cargo run --release --example concurrent_counting
//! ```

use beyond_bloom::quotient::ConcurrentQuotientFilter;
use beyond_bloom::workloads::zipf::{rank_to_key, Zipf};
use std::sync::Arc;
use std::time::Instant;

const DRAWS: usize = 2_000_000;
const DISTINCT: u64 = 200_000;

fn main() {
    // One shared skewed stream, pre-generated so every run ingests
    // the same multiset.
    let zipf = Zipf::new(DISTINCT, 1.1);
    let mut rng = beyond_bloom::workloads::rng(1);
    let stream: Vec<u64> = (0..DRAWS)
        .map(|_| rank_to_key(zipf.sample(&mut rng), 7))
        .collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ingesting {DRAWS} Zipf(1.1) draws over {DISTINCT} keys \
         ({cores} core(s) available — speedup is bounded by this)\n"
    );
    println!("{:>8} {:>12} {:>10}", "threads", "Mops", "speedup");
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let f = Arc::new(ConcurrentQuotientFilter::new(
            DISTINCT as usize * 2,
            1.0 / 256.0,
            6,
        ));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for chunk in stream.chunks(DRAWS / threads) {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    for &k in chunk {
                        f.insert(k).expect("insert");
                    }
                });
            }
        });
        let mops = DRAWS as f64 / t0.elapsed().as_secs_f64() / 1e6;
        if threads == 1 {
            base = mops;
        }
        println!("{threads:>8} {mops:>12.2} {:>9.2}x", mops / base);
    }

    // Verify counts against the exact multiset.
    let f = ConcurrentQuotientFilter::new(DISTINCT as usize * 2, 1.0 / 256.0, 6);
    let mut truth = std::collections::HashMap::new();
    for &k in &stream {
        f.insert(k).unwrap();
        *truth.entry(k).or_insert(0u64) += 1;
    }
    let undercounts = truth.iter().filter(|(&k, &c)| f.count(k) < c).count();
    let hottest = truth.values().max().unwrap();
    println!(
        "\ncorrectness: 0 undercounts expected, saw {undercounts}; hottest key count {hottest}"
    );
}
