//! Sequence search across sequencing experiments — the tutorial's
//! §3.2 case study: count k-mers with a CQF (Squeakr), then answer
//! "which experiments contain this sequence?" with an SBT and a
//! Mantis-style index, and navigate a filter-backed de Bruijn graph.
//!
//! ```text
//! cargo run --release --example genome_search
//! ```

use beyond_bloom::biofilter::{DeBruijnGraph, KmerCounter, MantisIndex, SequenceBloomTree};
use beyond_bloom::workloads::dna;

const K: usize = 21;

fn main() {
    // Sixteen synthetic "sequencing experiments".
    let experiments: Vec<Vec<u8>> = (0..16)
        .map(|i| dna::random_sequence(1000 + i, 30_000))
        .collect();

    // --- Squeakr: k-mer counting over reads --------------------------
    let reads = dna::reads_from(&experiments[0], 42, 2_000, 150, 0.01);
    let mut counter = KmerCounter::new(K, 60_000, 1.0 / 1024.0);
    counter.ingest_all(reads.iter().map(|r| r.as_slice()));
    println!(
        "squeakr: ingested {} reads -> {} k-mer instances, {} distinct, {:.1} bits/k-mer",
        reads.len(),
        counter.total_kmers(),
        counter.distinct_kmers(),
        counter.size_in_bytes() as f64 * 8.0 / counter.distinct_kmers() as f64
    );
    let probe = &experiments[0][10_000..10_000 + K];
    println!(
        "  coverage of one genomic k-mer: {}x (reads were ~10x)",
        counter.count_seq(probe)
    );

    // --- Experiment discovery: SBT vs Mantis --------------------------
    let sbt = SequenceBloomTree::from_sequences(&experiments, K, 0.01);
    let mantis = MantisIndex::build(&experiments, K, 1.0 / 4096.0);
    let query = &experiments[7][12_000..12_400];
    println!(
        "\nquery: 400bp fragment of experiment 7, theta = 0.8\n  SBT    -> {:?}  ({:.1} MiB)\n  Mantis -> {:?}  ({:.1} MiB, {} colour classes)",
        sbt.query_seq(query, 0.8),
        sbt.size_in_bytes() as f64 / (1 << 20) as f64,
        mantis.query_seq(query, 0.8),
        mantis.size_in_bytes() as f64 / (1 << 20) as f64,
        mantis.colour_classes(),
    );

    // --- de Bruijn graph navigation -----------------------------------
    let truth: std::collections::HashSet<u64> =
        dna::kmers(&experiments[0], K).into_iter().collect();
    let graph = DeBruijnGraph::build(&truth, K, 0.05);
    println!(
        "\nde Bruijn graph: {} k-mers in a Bloom filter at eps = 5%,\n  {} critical false positives stored exactly ({:.1}% of nodes)",
        graph.len(),
        graph.critical_false_positives(),
        graph.critical_false_positives() as f64 / graph.len() as f64 * 100.0
    );
    // Walk 100 steps along the genome through the graph.
    let path = dna::kmers(&experiments[0], K);
    let mut ok = 0;
    for w in path.windows(2).take(100) {
        if graph.neighbours(w[0]).contains(&w[1]) {
            ok += 1;
        }
    }
    println!("  walked 100 genome steps through the graph: {ok} navigable");
}
