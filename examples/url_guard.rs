//! Malicious-URL blocking — the tutorial's §3.3 case study: a router
//! filters URLs against a blocklist; every false positive costs an
//! expensive verification. Compares the traditional Bloom design, a
//! statically trained cascade, and an adaptive filter under a
//! workload whose hot benign set shifts mid-stream.
//!
//! ```text
//! cargo run --release --example url_guard
//! ```

use beyond_bloom::netsec::{
    AdaptiveBlocker, CascadingBloomBlocker, PlainBloomBlocker, UrlBlocker, Verdict,
};
use beyond_bloom::workloads::urls::UrlWorkload;

fn main() {
    let w = UrlWorkload::generate(7, 10_000, 500, 10_000);
    println!(
        "blocklist: {} malicious URLs; {} hot benign; {} cold benign\n",
        w.malicious.len(),
        w.hot_benign.len(),
        w.cold_benign.len()
    );

    let mut blockers: Vec<(&str, Box<dyn UrlBlocker>)> = vec![
        (
            "plain bloom",
            Box::new(PlainBloomBlocker::new(&w.malicious, 0.02)),
        ),
        (
            "cascading bloom",
            Box::new(CascadingBloomBlocker::new(
                &w.malicious,
                &w.hot_benign,
                0.02,
            )),
        ),
        (
            "adaptive filter",
            Box::new(AdaptiveBlocker::new(&w.malicious, 6)),
        ),
    ];

    // Phase 1: the trained regime.
    let stream = w.query_stream(8, 100_000, 0.7);
    let mal: u64 = stream.iter().filter(|(_, m)| *m).count() as u64;
    println!("phase 1: 100k queries, 70% hot-benign traffic ({mal} malicious)");
    for (name, b) in blockers.iter_mut() {
        let mut blocked = 0u64;
        for (url, _) in &stream {
            if b.check(url) == Verdict::Blocked {
                blocked += 1;
            }
        }
        println!(
            "  {name:<18} blocked {blocked}, benign verifications {}",
            b.verifications().saturating_sub(mal)
        );
    }

    // Phase 2: the hot set shifts (cold benign URLs become hot).
    let shifted = UrlWorkload {
        malicious: w.malicious.clone(),
        hot_benign: w.cold_benign[..500].to_vec(),
        cold_benign: w.cold_benign[500..].to_vec(),
    };
    let stream2 = shifted.query_stream(9, 100_000, 0.7);
    let mal2: u64 = stream2.iter().filter(|(_, m)| *m).count() as u64;
    println!("\nphase 2: hot benign set replaced (workload shift)");
    for (name, b) in blockers.iter_mut() {
        let before = b.verifications();
        for (url, _) in &stream2 {
            b.check(url);
        }
        println!(
            "  {name:<18} benign verifications {}",
            (b.verifications() - before).saturating_sub(mal2)
        );
    }
    println!(
        "\nthe static cascade only protects negatives it was trained on;\n\
         the adaptive filter repairs each new hot negative on first contact."
    );
}
