//! Cluster quickstart: three event-driven filter servers, a
//! consistent-hash cluster client routing named filters across them,
//! a live node join with shard migration, and replication of a hot
//! filter onto its ring successor.
//!
//! ```text
//! cargo run --release --example cluster_quickstart
//! ```

use beyond_bloom::service::{
    Backend, ClusterClient, EventedFilterServer, FilterClient, ServerConfig,
};
use beyond_bloom::workloads::unique_keys;

fn main() {
    // Two nodes to start. The evented server multiplexes every
    // connection over one readiness loop (epoll on linux, a portable
    // poll fallback elsewhere).
    let node_a = EventedFilterServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind a");
    let node_b = EventedFilterServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind b");
    println!(
        "cluster nodes: {} {}",
        node_a.local_addr(),
        node_b.local_addr()
    );

    // The cluster client owns the ring: each filter name hashes to an
    // arc, the arc's owner serves every request for that name.
    let mut cluster =
        ClusterClient::new(vec![node_a.local_addr(), node_b.local_addr()]).expect("cluster");
    for i in 0..8 {
        let name = format!("tenant-{i}");
        cluster
            .create(&name, Backend::ShardedCuckoo, 50_000, 0.01, 2, 7 + i)
            .expect("create");
        cluster
            .insert(&name, &unique_keys(100 + i, 10_000))
            .expect("insert");
        println!("{name:>9} -> {}", cluster.owner_addr(&name));
    }

    // A third node joins: only the filters whose hash arcs now belong
    // to it are migrated (snapshot -> blob-CREATE -> forget); the
    // rest are not even re-read.
    let node_c = EventedFilterServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind c");
    let report = cluster.add_node(node_c.local_addr()).expect("add node");
    println!(
        "\nnode {} joined: {} filters migrated, {} untouched",
        node_c.local_addr(),
        report.moved.len(),
        report.retained
    );
    for m in &report.moved {
        println!("  {} moved {} -> {}", m.name, m.from, m.to);
    }

    // Every filter still answers through the ring after migration.
    let keys = unique_keys(100, 10_000);
    let hits = cluster
        .contains("tenant-0", &keys)
        .expect("contains")
        .iter()
        .filter(|&&b| b)
        .count();
    println!(
        "\ntenant-0 after rebalance: {hits}/{} keys answered present",
        keys.len()
    );

    // Replicate tenant-0 onto its ring successor; a reader can then
    // query the replica node directly.
    let placed = cluster.replicate("tenant-0", 1).expect("replicate");
    let mut direct = FilterClient::connect(placed[0]).expect("connect replica");
    let replica_hits = direct
        .contains("tenant-0", &keys)
        .expect("replica contains")
        .iter()
        .filter(|&&b| b)
        .count();
    println!(
        "replica on {} answers {replica_hits}/{} directly",
        placed[0],
        keys.len()
    );

    drop((cluster, direct));
    node_a.shutdown();
    node_b.shutdown();
    node_c.shutdown();
    println!("\nall nodes drained");
}
