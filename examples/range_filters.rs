//! The range-filter landscape (§2.5) side by side: which filter
//! survives which workload — plus byte-string keys, the capability
//! Grafite trades away.
//!
//! ```text
//! cargo run --release --example range_filters
//! ```

use beyond_bloom::core::RangeFilter;
use beyond_bloom::rangefilter::{Arf, Grafite, Proteus, REncoder, Rosetta, Snarf, Surf, SurfBytes};
use beyond_bloom::workloads::CorrelatedRangeWorkload;

const N: usize = 100_000;

fn main() {
    let w = CorrelatedRangeWorkload::uniform(1, N, u64::MAX - 1);

    let surf = Surf::build(&w.keys, 8);
    let mut rosetta = Rosetta::new(N, 0.02, 17);
    let mut rencoder = REncoder::new(N, 17, 72.0);
    for &k in &w.keys {
        rosetta.insert(k);
        rencoder.insert(k);
    }
    let snarf = Snarf::build(&w.keys, 12.0);
    let grafite = Grafite::build(&w.keys, 16, 0.01);
    let proteus = Proteus::train(&w.keys, &[256; 64], 0.01);
    // ARF learns from a training pass over the backing store.
    let sample: Vec<(u64, u64)> = w
        .empty_queries(2, 2_000, 256, 0.5)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    let arf = Arf::train(&w.keys, &sample, 400_000);

    let filters: Vec<(&str, &dyn RangeFilter)> = vec![
        ("surf", &surf),
        ("rosetta", &rosetta),
        ("rencoder", &rencoder),
        ("snarf", &snarf),
        ("grafite", &grafite),
        ("proteus", &proteus),
        ("arf (trained)", &arf),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "filter", "bits/key", "fpr corr=0", "fpr corr=1", "fpr trained"
    );
    let q_un = w.empty_queries(3, 1_000, 256, 0.0);
    let q_co = w.empty_queries(4, 1_000, 256, 1.0);
    for (name, f) in &filters {
        let fpr = |qs: &[beyond_bloom::workloads::RangeQuery]| {
            qs.iter()
                .filter(|q| f.may_contain_range(q.lo, q.hi))
                .count() as f64
                / qs.len() as f64
        };
        let trained = sample
            .iter()
            .filter(|&&(lo, hi)| f.may_contain_range(lo, hi))
            .count() as f64
            / sample.len() as f64;
        println!(
            "{:<14} {:>10.1} {:>12.4} {:>12.4} {:>12.4}",
            name,
            f.size_in_bytes() as f64 * 8.0 / N as f64,
            fpr(&q_un),
            fpr(&q_co),
            trained,
        );
    }
    println!(
        "\ncorrelated queries (ranges hugging keys) break the trie- and\n\
         CDF-based designs; the dyadic hierarchies and Grafite hold;\n\
         ARF only filters what it was trained on.\n"
    );

    // Byte-string keys: SuRF's native habitat, impossible for Grafite.
    let words: Vec<Vec<u8>> = [
        "ape",
        "apple",
        "apricot",
        "banana",
        "blueberry",
        "cherry",
        "citron",
        "damson",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();
    let sb = SurfBytes::build(&words, 2);
    println!("byte-string SuRF over a fruit dictionary:");
    for (lo, hi) in [("ap", "az"), ("bb", "bk"), ("cl", "cz"), ("e", "z")] {
        println!(
            "  any key in [{lo:?}, {hi:?}]? {}",
            sb.may_contain_range(lo.as_bytes(), hi.as_bytes())
        );
    }
}
