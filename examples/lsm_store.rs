//! A filtered key-value store: the tutorial's §3.1 motivating
//! scenario. Builds an LSM tree four ways and compares the simulated
//! I/O bill for the same workload.
//!
//! ```text
//! cargo run --release --example lsm_store
//! ```

use beyond_bloom::lsm::{
    FilterKind, FprAllocation, IndexMode, LsmConfig, LsmTree, RangeFilterKind,
};

const WRITES: u64 = 200_000;
const LOOKUPS: u64 = 50_000;

fn main() {
    println!("ingesting {WRITES} writes, then {LOOKUPS} point lookups (half negative)\n");
    let configs = [
        (
            "unfiltered",
            LsmConfig {
                filter_kind: FilterKind::None,
                ..Default::default()
            },
        ),
        ("bloom per run (the classic design)", LsmConfig::default()),
        (
            "ribbon per run (static filters fit immutable runs)",
            LsmConfig {
                filter_kind: FilterKind::Ribbon,
                ..Default::default()
            },
        ),
        (
            "monkey allocation (size-proportional FPRs)",
            LsmConfig {
                allocation: FprAllocation::Monkey {
                    base_eps: 0.05,
                    ratio: 4.0,
                },
                ..Default::default()
            },
        ),
        (
            "global maplet (Chucky/SlimDB-style)",
            LsmConfig {
                index_mode: IndexMode::GlobalMaplet,
                filter_kind: FilterKind::None,
                ..Default::default()
            },
        ),
    ];

    for (name, config) in configs {
        let mut t = LsmTree::new(config);
        for i in 0..WRITES {
            t.put(key(i), i);
        }
        t.flush();
        t.io().reset();
        let mut found = 0u64;
        for i in 0..LOOKUPS {
            // Every other lookup misses.
            let probe = if i % 2 == 0 { key(i) } else { key(WRITES + i) };
            found += t.get(probe).is_some() as u64;
        }
        println!(
            "{name}\n    {:.3} reads/lookup, {} hits, filter memory {:.2} MiB, {} runs\n",
            t.io().reads() as f64 / LOOKUPS as f64,
            found,
            t.filter_bytes() as f64 / (1 << 20) as f64,
            t.run_count()
        );
    }

    // Range scans with and without range filters.
    println!("range scans into empty gaps (sparse key space):");
    for (name, rf) in [
        ("without range filters", RangeFilterKind::None),
        (
            "with grafite per run",
            RangeFilterKind::Grafite {
                l_bits: 8,
                eps: 0.01,
            },
        ),
    ] {
        let mut t = LsmTree::new(LsmConfig {
            range_filter: rf,
            ..Default::default()
        });
        for i in 0..100_000u64 {
            t.put(i * 1_000, i);
        }
        t.flush();
        t.io().reset();
        for i in 0..10_000u64 {
            assert!(t.scan(i * 1_000 + 1, i * 1_000 + 60).is_empty());
        }
        println!(
            "    {name}: {:.4} reads per empty scan",
            t.io().reads() as f64 / 10_000.0
        );
    }
}

fn key(i: u64) -> u64 {
    beyond_bloom::core::hash::mix64(i)
}
